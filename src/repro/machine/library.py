"""A library of concrete polynomial state machines.

These are the workloads used by the examples, integration tests and
benchmarks.  They span the degree range the paper's bounds care about:

* degree 1 — the bank-account and counter machines (the paper's motivating
  example: "updating the balance of a bank account is a linear function of
  the current balance and the incoming deposit/withdrawal");
* degree 2 — an order-book style machine whose price update multiplies state
  by command (representative of constant-product market updates);
* degree 2 — a dot-product accumulator;
* arbitrary degree — randomly generated polynomial transitions for property
  tests and scaling sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gf.field import Field
from repro.gf.multivariate import MultivariatePolynomial
from repro.machine.interface import StateMachine
from repro.machine.polynomial_machine import PolynomialTransition


def _variable(field: Field, arity: int, index: int) -> MultivariatePolynomial:
    return MultivariatePolynomial.variable(field, arity, index)


def _constant(field: Field, arity: int, value: int) -> MultivariatePolynomial:
    return MultivariatePolynomial.constant(field, arity, value)


def bank_account_machine(
    field: Field, num_accounts: int = 4, name: str = "bank-ledger"
) -> StateMachine:
    """A ledger of ``num_accounts`` balances; commands are per-account deltas.

    State ``S`` is the vector of balances; the command ``X`` is the vector of
    signed deposits/withdrawals (field elements; "negative" amounts are the
    additive inverses).  The transition is linear (degree 1):

        ``S'[i] = S[i] + X[i]``,    ``Y[i] = S[i] + X[i]``  (the new balances).
    """
    if num_accounts < 1:
        raise ConfigurationError(f"need at least one account, got {num_accounts}")
    arity = 2 * num_accounts
    next_state = []
    outputs = []
    for i in range(num_accounts):
        balance = _variable(field, arity, i)
        delta = _variable(field, arity, num_accounts + i)
        updated = balance + delta
        next_state.append(updated)
        outputs.append(updated)
    transition = PolynomialTransition(
        field,
        state_dim=num_accounts,
        command_dim=num_accounts,
        next_state_polys=next_state,
        output_polys=outputs,
    )
    # The zero deposit vector is an identity transition, so ragged service
    # rounds can pad idle ledgers without moving their balances.
    return StateMachine(
        field=field,
        transition=transition,
        initial_state=np.zeros(num_accounts, dtype=np.int64),
        name=name,
        noop=np.zeros(num_accounts, dtype=np.int64),
    )


def counter_machine(field: Field, name: str = "counter") -> StateMachine:
    """A single counter incremented by the command value (degree 1)."""
    arity = 2
    count = _variable(field, arity, 0)
    increment = _variable(field, arity, 1)
    updated = count + increment
    transition = PolynomialTransition(
        field,
        state_dim=1,
        command_dim=1,
        next_state_polys=[updated],
        output_polys=[updated],
    )
    return StateMachine(
        field=field,
        transition=transition,
        initial_state=np.zeros(1, dtype=np.int64),
        name=name,
        noop=np.zeros(1, dtype=np.int64),  # increment by 0: identity
    )


def affine_kv_machine(
    field: Field, num_keys: int = 3, scale: int = 3, name: str = "affine-kv"
) -> StateMachine:
    """A key-value store whose update is affine: ``S'[i] = scale*S[i] + X[i]``.

    Degree 1, but with a non-trivial coefficient so tests distinguish it from
    the plain additive ledger.  The output reports the previous values
    (read-your-old-value semantics).
    """
    if num_keys < 1:
        raise ConfigurationError(f"need at least one key, got {num_keys}")
    arity = 2 * num_keys
    next_state = []
    outputs = []
    for i in range(num_keys):
        old = _variable(field, arity, i)
        write = _variable(field, arity, num_keys + i)
        next_state.append(old.scale(scale) + write)
        outputs.append(old)
    transition = PolynomialTransition(
        field,
        state_dim=num_keys,
        command_dim=num_keys,
        next_state_polys=next_state,
        output_polys=outputs,
    )
    # Only the scale-1 machine has an identity command (the zero write);
    # for other scales an idle key still decays by ``scale`` per round, so no
    # noop is configured and padding falls back to the documented zero write.
    return StateMachine(
        field=field,
        transition=transition,
        initial_state=np.zeros(num_keys, dtype=np.int64),
        name=name,
        noop=np.zeros(num_keys, dtype=np.int64) if scale == 1 else None,
    )


def quadratic_market_machine(field: Field, name: str = "quadratic-market") -> StateMachine:
    """A degree-2 machine modelling a toy market / order-book update.

    State: ``(inventory, price)``.  Command: ``(quantity, aggressiveness)``.

    * ``inventory' = inventory + quantity``
    * ``price' = price + quantity * aggressiveness``  (quadratic in the inputs)
    * output: ``(trade_value, new_price)`` with ``trade_value = price * quantity``.

    The products of state and command components give total degree 2, which is
    the smallest degree where CSM's ``d``-dependence shows up in the bounds.
    """
    arity = 4  # inventory, price, quantity, aggressiveness
    inventory = _variable(field, arity, 0)
    price = _variable(field, arity, 1)
    quantity = _variable(field, arity, 2)
    aggressiveness = _variable(field, arity, 3)
    next_inventory = inventory + quantity
    next_price = price + quantity * aggressiveness
    trade_value = price * quantity
    transition = PolynomialTransition(
        field,
        state_dim=2,
        command_dim=2,
        next_state_polys=[next_inventory, next_price],
        output_polys=[trade_value, next_price],
    )
    # Zero quantity is an identity transition (no inventory or price move).
    return StateMachine(
        field=field,
        transition=transition,
        initial_state=field.array([0, 1]),
        name=name,
        noop=np.zeros(2, dtype=np.int64),
    )


def dot_product_machine(
    field: Field, vector_dim: int = 3, name: str = "dot-product"
) -> StateMachine:
    """A degree-2 accumulator: the state keeps a running inner product.

    State: ``(accumulator, w_1, ..., w_m)`` where ``w`` is a stored weight
    vector.  Command: a feature vector ``x``.  The accumulator is updated with
    ``accumulator + <w, x>`` and the output is the fresh inner product.  The
    weights themselves are left unchanged by the transition.
    """
    if vector_dim < 1:
        raise ConfigurationError(f"vector_dim must be positive, got {vector_dim}")
    state_dim = vector_dim + 1
    arity = state_dim + vector_dim
    accumulator = _variable(field, arity, 0)
    inner = MultivariatePolynomial.zero(field, arity)
    for i in range(vector_dim):
        weight = _variable(field, arity, 1 + i)
        feature = _variable(field, arity, state_dim + i)
        inner = inner + weight * feature
    next_state = [accumulator + inner]
    for i in range(vector_dim):
        next_state.append(_variable(field, arity, 1 + i))
    transition = PolynomialTransition(
        field,
        state_dim=state_dim,
        command_dim=vector_dim,
        next_state_polys=next_state,
        output_polys=[inner],
    )
    initial = np.zeros(state_dim, dtype=np.int64)
    initial[1:] = 1
    # The zero feature vector contributes <w, 0> = 0: identity transition.
    return StateMachine(
        field=field,
        transition=transition,
        initial_state=initial,
        name=name,
        noop=np.zeros(vector_dim, dtype=np.int64),
    )


def random_polynomial_machine(
    field: Field,
    state_dim: int,
    command_dim: int,
    degree: int,
    rng: np.random.Generator,
    output_dim: int = 1,
    name: str = "random-polynomial",
) -> StateMachine:
    """A machine with uniformly random component polynomials of the given degree.

    Used by property tests and the scaling benchmarks, where only the degree
    (not the semantics) of the transition matters.
    """
    if degree < 1:
        raise ConfigurationError(f"degree must be at least 1, got {degree}")
    arity = state_dim + command_dim
    next_state = [
        MultivariatePolynomial.random(field, arity, degree, rng)
        for _ in range(state_dim)
    ]
    outputs = [
        MultivariatePolynomial.random(field, arity, degree, rng)
        for _ in range(output_dim)
    ]
    transition = PolynomialTransition(
        field,
        state_dim=state_dim,
        command_dim=command_dim,
        next_state_polys=next_state,
        output_polys=outputs,
    )
    initial = field.random_array(rng, state_dim)
    return StateMachine(
        field=field, transition=transition, initial_state=initial, name=name
    )
