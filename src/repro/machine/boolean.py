"""Appendix A: running arbitrary Boolean state machines under CSM.

The appendix gives two constructions:

1. **Polynomial representation.**  Any Boolean function
   ``f : {0,1}^n -> {0,1}`` can be written as the multivariate polynomial
   ``p(x_1..x_n, y_1..y_n) = sum_{a in S_1} h_a`` over GF(2), where for each
   input vector ``a`` with ``f(a) = 1`` the monomial ``h_a`` multiplies
   ``x_i`` where ``a_i = 1`` and ``y_i = x_i + 1`` where ``a_i = 0``.
   Substituting ``y_i = x_i + 1`` yields a polynomial of degree at most ``n``
   in the original variables.

2. **Field extension.**  GF(2) is too small to host ``N`` distinct evaluation
   points, so each bit is embedded into ``GF(2**m)`` (``2**m >= N``) by
   mapping ``0 -> 0...0`` and ``1 -> 0...01``; the polynomial's value is
   invariant under the embedding, so coded execution over the extension field
   recovers the correct Boolean outputs.

:class:`BooleanTransitionCompiler` packages both steps: it takes a Python
truth-table (or callable) for the next-state and output bits of a Boolean
machine and produces a :class:`~repro.machine.polynomial_machine.PolynomialTransition`
over ``GF(2**m)`` ready for CSM.
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gf.extension_field import BinaryExtensionField
from repro.gf.multivariate import MultivariatePolynomial
from repro.machine.interface import StateMachine
from repro.machine.polynomial_machine import PolynomialTransition

BooleanFunction = Callable[[tuple[int, ...]], int]


def boolean_function_to_polynomial(
    field: BinaryExtensionField, num_inputs: int, function: BooleanFunction
) -> MultivariatePolynomial:
    """Compile ``f : {0,1}**num_inputs -> {0,1}`` into a polynomial over ``field``.

    The construction follows Appendix A: for every input vector ``a`` with
    ``f(a) = 1`` we add the monomial ``prod_i z_i`` where ``z_i = x_i`` if
    ``a_i = 1`` and ``z_i = x_i + 1`` if ``a_i = 0``.  Over characteristic 2,
    ``x_i + 1`` equals ``1 - x_i``, so the monomial is the indicator of input
    ``a``; the sum is therefore the (unique, multilinear) polynomial agreeing
    with ``f`` on the Boolean cube, with degree at most ``num_inputs``.
    """
    if num_inputs < 1:
        raise ConfigurationError(f"need at least one input bit, got {num_inputs}")
    if num_inputs > 16:
        raise ConfigurationError(
            f"truth-table compilation over {num_inputs} bits is unreasonably large"
        )
    result = MultivariatePolynomial.zero(field, num_inputs)
    one = MultivariatePolynomial.constant(field, num_inputs, 1)
    for assignment in product((0, 1), repeat=num_inputs):
        if int(function(assignment)) % 2 != 1:
            continue
        monomial = MultivariatePolynomial.constant(field, num_inputs, 1)
        for index, bit in enumerate(assignment):
            variable = MultivariatePolynomial.variable(field, num_inputs, index)
            factor = variable if bit == 1 else variable + one
            monomial = monomial * factor
        result = result + monomial
    return result


def embed_bits(field: BinaryExtensionField, bits: Sequence[int]) -> np.ndarray:
    """Embed a vector of GF(2) bits into ``GF(2**m)`` (Appendix A, eq. (13))."""
    return np.array([field.embed_bit(int(b)) for b in bits], dtype=np.int64)


def project_bits(field: BinaryExtensionField, values: Sequence[int]) -> np.ndarray:
    """Project embedded values back to bits; raises if a value is not 0 or 1."""
    return np.array([field.project_bit(int(v)) for v in values], dtype=np.int64)


class BooleanTransitionCompiler:
    """Compile a Boolean state machine into a CSM-compatible polynomial machine.

    Parameters
    ----------
    field:
        The binary extension field to embed into; use
        :meth:`BinaryExtensionField.for_network_size` to pick ``m`` from ``N``.
    state_bits, command_bits:
        Number of state and command bits.
    next_state_functions:
        One Boolean function per next-state bit; each receives the
        concatenated ``(state_bits + command_bits)`` input tuple.
    output_functions:
        One Boolean function per output bit, same signature.
    """

    def __init__(
        self,
        field: BinaryExtensionField,
        state_bits: int,
        command_bits: int,
        next_state_functions: Sequence[BooleanFunction],
        output_functions: Sequence[BooleanFunction],
    ) -> None:
        if len(next_state_functions) != state_bits:
            raise ConfigurationError(
                f"expected {state_bits} next-state functions, got {len(next_state_functions)}"
            )
        if not output_functions:
            raise ConfigurationError("need at least one output function")
        self.field = field
        self.state_bits = int(state_bits)
        self.command_bits = int(command_bits)
        self.next_state_functions = list(next_state_functions)
        self.output_functions = list(output_functions)

    @property
    def num_inputs(self) -> int:
        return self.state_bits + self.command_bits

    def compile_transition(self) -> PolynomialTransition:
        """Produce the polynomial transition over the extension field."""
        next_state_polys = [
            boolean_function_to_polynomial(self.field, self.num_inputs, fn)
            for fn in self.next_state_functions
        ]
        output_polys = [
            boolean_function_to_polynomial(self.field, self.num_inputs, fn)
            for fn in self.output_functions
        ]
        return PolynomialTransition(
            self.field,
            state_dim=self.state_bits,
            command_dim=self.command_bits,
            next_state_polys=next_state_polys,
            output_polys=output_polys,
        )

    def compile_machine(
        self, initial_bits: Sequence[int], name: str = "boolean-machine"
    ) -> StateMachine:
        """Produce a full :class:`StateMachine` with an embedded initial state."""
        if len(initial_bits) != self.state_bits:
            raise ConfigurationError(
                f"initial state has {len(initial_bits)} bits, expected {self.state_bits}"
            )
        transition = self.compile_transition()
        return StateMachine(
            field=self.field,
            transition=transition,
            initial_state=embed_bits(self.field, initial_bits),
            name=name,
        )

    # -- reference execution over bits -----------------------------------------------
    def reference_step(
        self, state_bits: Sequence[int], command_bits: Sequence[int]
    ) -> tuple[list[int], list[int]]:
        """Evaluate the original Boolean functions directly (ground truth)."""
        inputs = tuple(int(b) for b in state_bits) + tuple(int(b) for b in command_bits)
        next_state = [int(fn(inputs)) % 2 for fn in self.next_state_functions]
        outputs = [int(fn(inputs)) % 2 for fn in self.output_functions]
        return next_state, outputs
