"""Polynomial state-transition functions.

A :class:`PolynomialTransition` packages one multivariate polynomial per
next-state component and per output component.  All polynomials share the
same variable ordering: the first ``state_dim`` variables are the state
components, the remaining ``command_dim`` variables are the command
components.  The total degree ``d`` of the transition is the maximum total
degree across all component polynomials — the quantity that enters every
bound in the paper (``K <= (1 - 2*mu) N / d + 1 - 1/d`` etc.).

The method :meth:`compose` builds the univariate composite polynomials
``h_j(z) = f_j(u_1(z), ..., u_s(z), v_1(z), ..., v_c(z))`` used by the
correctness argument of the coded execution phase, so tests can check that a
node's coded computation really is an evaluation of ``h_j`` at its point.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gf.field import Field
from repro.gf.multivariate import MultivariatePolynomial
from repro.gf.polynomial import Poly
from repro.machine.interface import validate_step_batch


class PolynomialTransition:
    """A transition function given componentwise as multivariate polynomials."""

    def __init__(
        self,
        field: Field,
        state_dim: int,
        command_dim: int,
        next_state_polys: Sequence[MultivariatePolynomial],
        output_polys: Sequence[MultivariatePolynomial],
    ) -> None:
        if state_dim < 1 or command_dim < 1:
            raise ConfigurationError(
                f"state_dim and command_dim must be positive, got {state_dim}, {command_dim}"
            )
        arity = state_dim + command_dim
        for poly in list(next_state_polys) + list(output_polys):
            if poly.field != field:
                raise ConfigurationError("component polynomial over a different field")
            if poly.arity != arity:
                raise ConfigurationError(
                    f"component polynomial has arity {poly.arity}, expected {arity}"
                )
        if len(next_state_polys) != state_dim:
            raise ConfigurationError(
                f"expected {state_dim} next-state polynomials, got {len(next_state_polys)}"
            )
        if not output_polys:
            raise ConfigurationError("transition needs at least one output polynomial")
        self.field = field
        self.state_dim = int(state_dim)
        self.command_dim = int(command_dim)
        self.next_state_polys = list(next_state_polys)
        self.output_polys = list(output_polys)
        self.output_dim = len(self.output_polys)

    # -- properties -----------------------------------------------------------------
    @property
    def arity(self) -> int:
        return self.state_dim + self.command_dim

    @property
    def degree(self) -> int:
        """Total degree ``d`` of the transition (at least 1)."""
        degrees = [p.total_degree for p in self.next_state_polys + self.output_polys]
        return max(max(degrees), 1)

    @property
    def result_dim(self) -> int:
        """Dimension of the full coded result vector (next state + output)."""
        return self.state_dim + self.output_dim

    # -- execution ---------------------------------------------------------------------
    def step(self, state: np.ndarray, command: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Apply ``f`` to a plain (uncoded) state/command pair."""
        assignment = self._assignment(state, command)
        next_state = np.array(
            [p.evaluate(assignment) for p in self.next_state_polys], dtype=np.int64
        )
        output = np.array(
            [p.evaluate(assignment) for p in self.output_polys], dtype=np.int64
        )
        return next_state, output

    def evaluate_result_vector(self, state: np.ndarray, command: np.ndarray) -> np.ndarray:
        """Return the concatenated result ``(next_state || output)``.

        This is exactly what a CSM node computes on its *coded* state and
        command: because ``f`` is a polynomial, feeding coded inputs produces
        the evaluation of the composite polynomial at the node's point.
        """
        next_state, output = self.step(state, command)
        return np.concatenate([next_state, output])

    def step_batch(
        self, states: np.ndarray, commands: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply ``f`` to ``n`` state/command rows in one vectorised pass.

        ``states`` has shape ``(n, state_dim)`` and ``commands`` shape
        ``(n, command_dim)``; returns ``(next_states, outputs)`` of shapes
        ``(n, state_dim)`` and ``(n, output_dim)``.  Each component polynomial
        is evaluated once over the stacked assignment matrix, so the per-row
        values — and, when an operation counter is attached, the per-row
        operation counts — are identical to ``n`` scalar :meth:`step` calls.
        """
        # The assignment matrix is canonical after validation; the internal
        # evaluation entry skips each component's redundant re-reduction.
        assignments = self._assignment_batch(states, commands)
        next_states = np.stack(
            [p._evaluate_batch_canonical(assignments) for p in self.next_state_polys],
            axis=1,
        )
        outputs = np.stack(
            [p._evaluate_batch_canonical(assignments) for p in self.output_polys],
            axis=1,
        )
        return next_states, outputs

    def evaluate_result_vectors(
        self, states: np.ndarray, commands: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`evaluate_result_vector`: ``(n, result_dim)`` rows.

        Row ``i`` is what node ``i`` computes on its coded state/command pair;
        the coded execution engine uses this to evaluate every node's coded
        transition in one stacked pass instead of a per-node Python loop.
        """
        next_states, outputs = self.step_batch(states, commands)
        return np.concatenate([next_states, outputs], axis=1)

    def _assignment_batch(self, states: np.ndarray, commands: np.ndarray) -> np.ndarray:
        states_arr, commands_arr = validate_step_batch(
            self.field, states, commands, self.state_dim, self.command_dim
        )
        return np.concatenate([states_arr, commands_arr], axis=1)

    def _assignment(self, state: np.ndarray, command: np.ndarray) -> list[int]:
        state_vec = self.field.array(state).reshape(-1)
        command_vec = self.field.array(command).reshape(-1)
        if state_vec.shape[0] != self.state_dim:
            raise ConfigurationError(
                f"state dimension {state_vec.shape[0]} does not match {self.state_dim}"
            )
        if command_vec.shape[0] != self.command_dim:
            raise ConfigurationError(
                f"command dimension {command_vec.shape[0]} does not match {self.command_dim}"
            )
        return [int(v) for v in state_vec] + [int(v) for v in command_vec]

    # -- composite polynomials ------------------------------------------------------------
    def compose(
        self, state_polys: Sequence[Poly], command_polys: Sequence[Poly]
    ) -> list[Poly]:
        """Build the composite polynomials ``h_j(z) = f_j(u(z), v(z))``.

        ``state_polys`` are the per-component interpolants ``u(z)`` of the true
        states, ``command_polys`` those of the commands.  The returned list has
        ``result_dim`` entries (next-state components followed by outputs); each
        has degree at most ``degree * (K - 1)``.
        """
        if len(state_polys) != self.state_dim:
            raise ConfigurationError(
                f"expected {self.state_dim} state polynomials, got {len(state_polys)}"
            )
        if len(command_polys) != self.command_dim:
            raise ConfigurationError(
                f"expected {self.command_dim} command polynomials, got {len(command_polys)}"
            )
        inner = list(state_polys) + list(command_polys)
        composites = [p.compose_univariate(inner) for p in self.next_state_polys]
        composites += [p.compose_univariate(inner) for p in self.output_polys]
        return composites

    def split_result(self, result: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Split a concatenated result vector back into ``(next_state, output)``."""
        vec = self.field.array(result).reshape(-1)
        if vec.shape[0] != self.result_dim:
            raise ConfigurationError(
                f"result vector has dimension {vec.shape[0]}, expected {self.result_dim}"
            )
        return vec[: self.state_dim].copy(), vec[self.state_dim :].copy()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"PolynomialTransition(state_dim={self.state_dim}, "
            f"command_dim={self.command_dim}, output_dim={self.output_dim}, "
            f"degree={self.degree})"
        )
