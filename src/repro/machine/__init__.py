"""Polynomial state machines — the class of programs CSM can execute.

The paper restricts the state-transition function
``(S(t+1), Y(t)) = f(S(t), X(t))`` to multivariate polynomials of constant
total degree ``d``; this package provides:

* :class:`~repro.machine.interface.StateMachine` — the deterministic machine
  abstraction (state/command/output dimensions plus a transition).
* :class:`~repro.machine.polynomial_machine.PolynomialTransition` — a
  transition given as one multivariate polynomial per next-state component
  and per output component.
* :mod:`~repro.machine.library` — concrete machines used by the examples and
  benchmarks (bank ledger, counters, an order-book style quadratic machine,
  affine key-value machines).
* :mod:`~repro.machine.boolean` — the Appendix A compiler from arbitrary
  Boolean functions to polynomials, and the GF(2**m) embedding.
"""

from repro.machine.interface import StateMachine, MachineState, TransitionOutput
from repro.machine.polynomial_machine import PolynomialTransition
from repro.machine.library import (
    bank_account_machine,
    counter_machine,
    affine_kv_machine,
    quadratic_market_machine,
    dot_product_machine,
    random_polynomial_machine,
)
from repro.machine.boolean import (
    boolean_function_to_polynomial,
    BooleanTransitionCompiler,
    embed_bits,
    project_bits,
)

__all__ = [
    "StateMachine",
    "MachineState",
    "TransitionOutput",
    "PolynomialTransition",
    "bank_account_machine",
    "counter_machine",
    "affine_kv_machine",
    "quadratic_market_machine",
    "dot_product_machine",
    "random_polynomial_machine",
    "boolean_function_to_polynomial",
    "BooleanTransitionCompiler",
    "embed_bits",
    "project_bits",
]
