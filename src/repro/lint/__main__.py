"""Command-line entry point: ``python -m repro.lint src [options]``.

Exit status: 0 when no non-baselined findings remain, 1 when new findings
were reported, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.lint.baseline import load_baseline, new_findings, write_baseline
from repro.lint.config import load_config
from repro.lint.engine import LintEngine
from repro.lint.rules import RULE_REGISTRY


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="csm-lint: determinism & protocol-invariant static analysis",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to analyze (default: the default-paths "
            "list from [tool.csm-lint])"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="JSON baseline of grandfathered findings (only *new* findings fail)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the --baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        default=None,
        help=f"comma-separated rule ids to run (default: all of "
        f"{','.join(sorted(RULE_REGISTRY))})",
    )
    parser.add_argument(
        "--config",
        metavar="PYPROJECT",
        default=None,
        help="pyproject.toml holding [tool.csm-lint] (default: ./pyproject.toml)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULE_REGISTRY):
            print(f"{rule_id}  {RULE_REGISTRY[rule_id].description}")
        return 0

    config = load_config(args.config)
    rule_ids = (
        [token.strip().upper() for token in args.rules.split(",") if token.strip()]
        if args.rules
        else None
    )
    try:
        engine = LintEngine(config=config, rule_ids=rule_ids)
    except ValueError as exc:
        parser.error(str(exc))

    if args.paths:
        missing = [p for p in args.paths if not Path(p).exists()]
        if missing:
            parser.error(f"no such path(s): {', '.join(missing)}")
        paths = list(args.paths)
    else:
        # Configured roots may be absent when invoked from an unrelated
        # working directory; explicit paths above still error.
        paths = [p for p in config.default_paths if Path(p).exists()]
        if not paths:
            parser.error(
                "no paths to analyze: pass paths explicitly or set "
                "default-paths in [tool.csm-lint]"
            )

    findings = engine.check_paths(paths)

    if args.write_baseline:
        if not args.baseline:
            parser.error("--write-baseline requires --baseline FILE")
        write_baseline(args.baseline, findings)
        print(
            f"wrote {len(findings)} finding(s) to baseline {args.baseline}",
            file=sys.stderr,
        )
        return 0

    baseline = load_baseline(args.baseline) if args.baseline else None
    fresh = new_findings(findings, baseline) if baseline is not None else findings
    baselined = len(findings) - len(fresh)

    if args.format == "json":
        print(
            json.dumps(
                {
                    "findings": [f.as_dict() for f in fresh],
                    "baselined": baselined,
                    "checked_rules": sorted(r.rule_id for r in engine.rules),
                },
                indent=2,
            )
        )
    else:
        for finding in fresh:
            print(finding.format_text())
        summary = f"{len(fresh)} finding(s)"
        if baselined:
            summary += f" ({baselined} baselined finding(s) suppressed)"
        print(summary, file=sys.stderr)

    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())
