"""Committed findings baseline: grandfather old violations, block new ones.

The baseline intentionally does *not* store line numbers.  A finding's
fingerprint is ``(path, rule, stripped source line)``; the baseline stores
how many findings share each fingerprint.  Unrelated edits that move code
around therefore leave the baseline stable, while a *new* violation — even
one textually identical to a baselined one — trips the gate as soon as it
raises the count for its fingerprint.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from repro.lint.engine import Finding

__all__ = ["fingerprint", "load_baseline", "new_findings", "write_baseline"]

BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    return f"{finding.path}::{finding.rule_id}::{finding.line_text}"


def load_baseline(path: str | Path) -> Counter:
    """Load a baseline file into a fingerprint -> count mapping."""
    baseline_path = Path(path)
    if not baseline_path.is_file():
        return Counter()
    data = json.loads(baseline_path.read_text(encoding="utf-8"))
    counts: Counter = Counter()
    for entry in data.get("findings", []):
        key = f"{entry['path']}::{entry['rule']}::{entry.get('line_text', '')}"
        counts[key] += int(entry.get("count", 1))
    return counts


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> None:
    """Serialise ``findings`` as the new baseline (sorted, deterministic)."""
    counts: Counter = Counter(fingerprint(f) for f in findings)
    meta: dict[str, tuple[str, str, str]] = {}
    for finding in findings:
        meta.setdefault(
            fingerprint(finding),
            (finding.path, finding.rule_id, finding.line_text),
        )
    entries = [
        {
            "path": meta[key][0],
            "rule": meta[key][1],
            "line_text": meta[key][2],
            "count": count,
        }
        for key, count in sorted(counts.items())
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def new_findings(findings: list[Finding], baseline: Counter) -> list[Finding]:
    """Findings beyond the baselined count for their fingerprint."""
    remaining = Counter(baseline)
    fresh: list[Finding] = []
    for finding in findings:
        key = fingerprint(finding)
        if remaining[key] > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh
