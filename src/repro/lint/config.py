"""Configuration for csm-lint, read from ``[tool.csm-lint]`` in pyproject.

The defaults below encode this repository's invariants; a ``pyproject.toml``
section overrides them key by key (kebab-case keys, as is conventional for
tool tables).  Parsing uses :mod:`tomllib` when available (Python >= 3.11)
and degrades to the built-in defaults otherwise, so the analyzer itself
never needs a third-party TOML parser.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - 3.10 fallback
    tomllib = None  # type: ignore[assignment]

#: Default analysis roots used when ``python -m repro.lint`` is invoked
#: without positional paths.  Projects widen this via ``default-paths`` in
#: ``[tool.csm-lint]`` (this repository lints ``src`` and ``examples``).
DEFAULT_LINT_PATHS = ("src",)

#: Default site(s) allowed to construct RNG streams (DET001).  Everything
#: else must accept a ``numpy.random.Generator`` or call
#: :func:`repro.rng.default_stream` / :func:`repro.rng.derived_stream`.
DEFAULT_RNG_ALLOWED = ("repro/rng.py",)

#: Default locations allowed to read the wall clock (DET002).
DEFAULT_CLOCK_ALLOWED = ("repro/analysis/measurement.py", "benchmarks/")

#: Default scope of the OperationCounter charging rule (CNT001).
DEFAULT_COUNT_PATHS = ("repro/gf/",)

#: Class-name pattern CNT001 applies to within its scope.
DEFAULT_COUNT_CLASS_PATTERN = r"(?:Field|Poly|Polynomial|Evaluator|Decoder|Code|Scheme)$"

#: ``Class.method`` entries exempt from CNT001 because their operation-count
#: parity is verified by tests rather than by an inline charge.
DEFAULT_COUNT_PARITY_ALLOWLIST = ()


@dataclass
class LintConfig:
    """Resolved analyzer configuration."""

    disable: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()
    default_paths: tuple[str, ...] = DEFAULT_LINT_PATHS
    rng_allowed_paths: tuple[str, ...] = DEFAULT_RNG_ALLOWED
    clock_allowed_paths: tuple[str, ...] = DEFAULT_CLOCK_ALLOWED
    count_paths: tuple[str, ...] = DEFAULT_COUNT_PATHS
    count_class_pattern: str = DEFAULT_COUNT_CLASS_PATTERN
    count_parity_allowlist: tuple[str, ...] = DEFAULT_COUNT_PARITY_ALLOWLIST
    extra: dict = field(default_factory=dict)

    def path_matches(self, path: str, patterns: tuple[str, ...]) -> bool:
        """True when ``path`` falls under any of ``patterns``.

        Patterns are plain path fragments: a trailing ``/`` matches a whole
        directory subtree, otherwise the fragment must appear as a suffix or
        interior component of the posix-normalised path.
        """
        norm = Path(path).as_posix()
        for pattern in patterns:
            frag = pattern.rstrip()
            if not frag:
                continue
            if frag.endswith("/"):
                if norm.startswith(frag) or f"/{frag}" in f"/{norm}/":
                    return True
            elif norm == frag or norm.endswith(f"/{frag}") or f"/{frag}/" in f"/{norm}":
                return True
        return False


_TUPLE_KEYS = {
    "disable": "disable",
    "exclude": "exclude",
    "default-paths": "default_paths",
    "rng-allowed-paths": "rng_allowed_paths",
    "clock-allowed-paths": "clock_allowed_paths",
    "count-paths": "count_paths",
    "count-parity-allowlist": "count_parity_allowlist",
}


def load_config(pyproject_path: str | Path | None = None) -> LintConfig:
    """Load ``[tool.csm-lint]`` from ``pyproject.toml``.

    ``pyproject_path`` defaults to ``pyproject.toml`` in the current
    directory; a missing file, a missing table, or a runtime without
    :mod:`tomllib` all yield the built-in defaults.
    """
    config = LintConfig()
    if tomllib is None:
        return config
    path = Path(pyproject_path) if pyproject_path is not None else Path("pyproject.toml")
    if not path.is_file():
        return config
    with path.open("rb") as handle:
        data = tomllib.load(handle)
    table = data.get("tool", {}).get("csm-lint", {})
    if not isinstance(table, dict):
        return config
    for toml_key, attr in _TUPLE_KEYS.items():
        value = table.get(toml_key)
        if isinstance(value, list):
            setattr(config, attr, tuple(str(v) for v in value))
    pattern = table.get("count-class-pattern")
    if isinstance(pattern, str):
        config.count_class_pattern = pattern
    config.extra = {
        k: v
        for k, v in table.items()
        if k not in _TUPLE_KEYS and k != "count-class-pattern"
    }
    return config
