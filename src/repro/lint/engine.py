"""csm-lint engine: file discovery, rule dispatch, suppression filtering.

A :class:`Finding` is a rule hit attributed to a file/line, carrying the
stripped source text of its line so the baseline can match findings robustly
across unrelated line-number churn (see :mod:`repro.lint.baseline`).

Per-line suppression uses the comment ``# csm-lint: disable=RULE`` (comma
list or ``all``) on the flagged line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.config import LintConfig
from repro.lint.rules import RULE_REGISTRY, FileContext, Rule

__all__ = ["Finding", "LintEngine", "analyze_paths"]

_SUPPRESS_RE = re.compile(r"#\s*csm-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One analyzer finding, ready for reporting and baseline matching."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    line_text: str

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule_id} {self.message}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text,
        }


def suppressed_rules(line_text: str) -> set[str]:
    """Rule ids suppressed by a ``# csm-lint: disable=...`` comment."""
    match = _SUPPRESS_RE.search(line_text)
    if not match:
        return set()
    return {token.strip().upper() for token in match.group(1).split(",") if token.strip()}


class LintEngine:
    """Runs the registered rules over source files."""

    def __init__(
        self,
        config: LintConfig | None = None,
        rule_ids: Sequence[str] | None = None,
    ) -> None:
        self.config = config or LintConfig()
        enabled = set(rule_ids) if rule_ids is not None else set(RULE_REGISTRY)
        enabled -= set(self.config.disable)
        unknown = enabled - set(RULE_REGISTRY)
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        self.rules: list[Rule] = [
            RULE_REGISTRY[rule_id]() for rule_id in sorted(enabled)
        ]

    # -- single file -------------------------------------------------------------
    def check_source(self, source: str, path: str) -> list[Finding]:
        """Analyze one file's source text; returns suppression-filtered findings."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            return [
                Finding(
                    rule_id="PARSE",
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"syntax error: {exc.msg}",
                    line_text="",
                )
            ]
        lines = source.splitlines()
        module = FileContext(path=path, tree=tree, source_lines=lines, config=self.config)
        findings: list[Finding] = []
        for rule in self.rules:
            for raw in rule.check(module):
                line_text = (
                    lines[raw.line - 1].strip() if 0 < raw.line <= len(lines) else ""
                )
                suppressed = suppressed_rules(
                    lines[raw.line - 1] if 0 < raw.line <= len(lines) else ""
                )
                if raw.rule_id.upper() in suppressed or "ALL" in suppressed:
                    continue
                findings.append(
                    Finding(
                        rule_id=raw.rule_id,
                        path=path,
                        line=raw.line,
                        col=raw.col,
                        message=raw.message,
                        line_text=line_text,
                    )
                )
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def check_file(self, path: Path, display_path: str | None = None) -> list[Finding]:
        source = path.read_text(encoding="utf-8")
        return self.check_source(source, display_path or path.as_posix())

    # -- trees -------------------------------------------------------------------
    def iter_python_files(self, roots: Iterable[str | Path]) -> list[Path]:
        files: list[Path] = []
        for root in roots:
            root_path = Path(root)
            if root_path.is_file():
                files.append(root_path)
            elif root_path.is_dir():
                files.extend(sorted(root_path.rglob("*.py")))
        return [
            f
            for f in files
            if not self.config.path_matches(f.as_posix(), self.config.exclude)
        ]

    def check_paths(self, roots: Iterable[str | Path]) -> list[Finding]:
        findings: list[Finding] = []
        for file_path in self.iter_python_files(roots):
            findings.extend(self.check_file(file_path))
        return findings


def analyze_paths(
    roots: Iterable[str | Path],
    config: LintConfig | None = None,
    rule_ids: Sequence[str] | None = None,
) -> list[Finding]:
    """Convenience wrapper: run the engine over ``roots``."""
    return LintEngine(config=config, rule_ids=rule_ids).check_paths(roots)
