"""csm-lint: AST-based determinism and protocol-invariant analysis.

Every performance PR in this repository is certified by *bit-identity*
oracles — identical rng streams, identical :class:`~repro.gf.field.
OperationCounter` charges, identical delivery logs.  Those invariants are
easy to break silently: an ambient ``np.random.default_rng(0)`` fallback, a
stray ``time.time()`` in a hot path, or a GF fast path that forgets to
charge the counter only surfaces when a property suite happens to catch it.

``repro.lint`` shifts those checks left.  It is a small rule-driven static
analyzer over the repository's own invariants:

========  ==============================================================
Rule      Invariant
========  ==============================================================
DET001    RNG streams are constructed only at allowlisted sites
          (:mod:`repro.rng`); everything else takes a ``Generator``.
DET002    Wall-clock reads live only in the measurement/benchmark layer.
DET003    No iteration over ``set``s (or unsorted ``dict.keys()`` feeding
          accumulation) — replay order must be deterministic.
CNT001    Arithmetic methods on gf field/polynomial/decoder classes charge
          the attached ``OperationCounter`` (or are allowlisted as
          count-parity verified).
RNG001    A function that *accepts* an ``rng`` parameter never constructs
          a second stream of its own.
EXC001    No bare ``except`` and no silently swallowed
          ``ConsensusError``/``SecurityViolation``.
========  ==============================================================

Findings can be suppressed per line with ``# csm-lint: disable=RULE`` (or
``disable=RULE1,RULE2`` / ``disable=all``), and grandfathered violations
live in a committed JSON baseline (``lint-baseline.json``).  Run it as::

    python -m repro.lint src [--baseline lint-baseline.json] [--format json]

Configuration is read from ``[tool.csm-lint]`` in ``pyproject.toml``.
"""

from repro.lint.config import LintConfig, load_config
from repro.lint.engine import Finding, LintEngine, analyze_paths
from repro.lint.rules import RULE_REGISTRY, Rule

__all__ = [
    "Finding",
    "LintConfig",
    "LintEngine",
    "RULE_REGISTRY",
    "Rule",
    "analyze_paths",
    "load_config",
]
