"""The csm-lint rule registry and the six repository-invariant rules.

Each rule is a class with a ``rule_id``, a one-line ``description`` and a
``check(module: FileContext) -> list[RawFinding]`` method.  Rules operate on
a shared :class:`FileContext` (path + AST + resolved import aliases) so the
module is parsed once per file regardless of how many rules run.

Name resolution is alias-aware: ``import numpy as np`` followed by
``np.random.default_rng(...)`` resolves to the canonical dotted name
``numpy.random.default_rng``, as does ``from numpy.random import
default_rng`` followed by a bare ``default_rng(...)`` call.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from dataclasses import field as dataclass_field

from repro.lint.config import LintConfig

__all__ = ["FileContext", "RawFinding", "Rule", "RULE_REGISTRY", "register_rule"]


@dataclass
class RawFinding:
    """A rule hit before suppression/baseline filtering."""

    rule_id: str
    line: int
    col: int
    message: str


@dataclass
class FileContext:
    """Everything a rule needs to know about one source file."""

    path: str
    tree: ast.Module
    source_lines: list[str]
    config: LintConfig
    #: local alias -> canonical dotted prefix, e.g. ``np -> numpy``,
    #: ``default_rng -> numpy.random.default_rng``.
    aliases: dict[str, str] = dataclass_field(default_factory=dict)

    def __post_init__(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted name of an attribute/name expression, if static."""
        parts: list[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        root = self.aliases.get(cursor.id, cursor.id)
        parts.append(root)
        return ".".join(reversed(parts))


class Rule:
    """Base class: subclasses set ``rule_id``/``description`` and ``check``."""

    rule_id: str = ""
    description: str = ""

    def check(self, module: FileContext) -> list[RawFinding]:  # pragma: no cover
        raise NotImplementedError


RULE_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    if not cls.rule_id:
        raise ValueError(f"rule class {cls.__name__} has no rule_id")
    if cls.rule_id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_REGISTRY[cls.rule_id] = cls
    return cls


# -- DET001: ambient RNG construction -----------------------------------------------

#: Canonical names whose *call* constructs a fresh random stream.
RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
        "random.Random",
        "random.SystemRandom",
    }
)


def _rng_construction_calls(module: FileContext, root: ast.AST) -> list[ast.Call]:
    calls = []
    for node in ast.walk(root):
        if isinstance(node, ast.Call):
            name = module.resolve(node.func)
            if name in RNG_CONSTRUCTORS:
                calls.append(node)
    return calls


@register_rule
class RngConstructionRule(Rule):
    """DET001 — RNG streams must come from the allowlisted constructor site.

    Ambient fallbacks like ``rng or np.random.default_rng(0)`` silently give
    two collaborating components *independent* streams with the same seed,
    which breaks replay determinism the moment one of them adds a draw.  All
    stream construction belongs in :mod:`repro.rng`.
    """

    rule_id = "DET001"
    description = "RNG constructed outside the approved constructor allowlist"

    def check(self, module: FileContext) -> list[RawFinding]:
        if module.config.path_matches(module.path, module.config.rng_allowed_paths):
            return []
        return [
            RawFinding(
                self.rule_id,
                call.lineno,
                call.col_offset,
                f"RNG constructed via `{module.resolve(call.func)}`; use "
                "repro.rng.default_stream/derived_stream or accept a Generator",
            )
            for call in _rng_construction_calls(module, module.tree)
        ]


# -- DET002: wall-clock reads --------------------------------------------------------

CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``now()`` is only a clock read when called with no tz argument on a
#: datetime class; with arguments it may be an unrelated method.
ARGLESS_CLOCK_CALLS = frozenset({"datetime.datetime.now", "datetime.now"})


@register_rule
class WallClockRule(Rule):
    """DET002 — wall-clock reads outside the measurement/benchmark layer.

    Simulated time (``network.now``) drives every protocol; a real clock
    read anywhere else cannot be replayed bit-identically.
    """

    rule_id = "DET002"
    description = "wall-clock call outside the measurement/benchmark layer"

    def check(self, module: FileContext) -> list[RawFinding]:
        if module.config.path_matches(module.path, module.config.clock_allowed_paths):
            return []
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = module.resolve(node.func)
            if name is None:
                continue
            hit = name in CLOCK_CALLS or (
                name in ARGLESS_CLOCK_CALLS and not node.args and not node.keywords
            )
            if hit:
                findings.append(
                    RawFinding(
                        self.rule_id,
                        node.lineno,
                        node.col_offset,
                        f"wall-clock call `{name}` outside "
                        "analysis/measurement.py and benchmarks/",
                    )
                )
        return findings


# -- DET003: iteration over unordered collections ------------------------------------


def _is_set_expr(node: ast.expr) -> bool:
    """True for expressions that are syntactically sets (unordered)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra stays unordered: ``set(a) | seen`` etc.  Only flag when
        # at least one operand is itself syntactically a set.
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def _is_keys_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "keys"
        and not node.args
        and not node.keywords
    )


def _accumulates(body: list[ast.stmt]) -> bool:
    """True when the loop body feeds an order-sensitive accumulation."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in {"append", "extend", "insert", "write"}:
                    return True
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                return True
            if isinstance(node, ast.AugAssign):
                return True
    return False


@register_rule
class UnorderedIterationRule(Rule):
    """DET003 — ordered results must not be derived from unordered iteration.

    Iterating a ``set`` produces a hash-seed-dependent order; any list,
    string or dict built from it is nondeterministic across processes.
    ``dict.keys()`` is insertion-ordered, but when its order feeds an
    accumulation the insertion order itself becomes a silent invariant —
    require ``sorted(...)`` to make the intent explicit.
    """

    rule_id = "DET003"
    description = "iteration over set/dict.keys() without sorted()"

    def check(self, module: FileContext) -> list[RawFinding]:
        findings = []

        def flag(node: ast.expr, what: str) -> None:
            findings.append(
                RawFinding(
                    self.rule_id,
                    node.lineno,
                    node.col_offset,
                    f"iteration over {what} without sorted(); "
                    "order-sensitive consumers become nondeterministic",
                )
            )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.For):
                if _is_set_expr(node.iter):
                    flag(node.iter, "a set expression")
                elif _is_keys_call(node.iter) and _accumulates(node.body):
                    flag(node.iter, "dict.keys()")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                # ``sorted(set(...))`` needs no special case: the loop/
                # comprehension then iterates the *sorted call*, not the set.
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        flag(gen.iter, "a set expression")
        return findings


# -- CNT001: uncharged field arithmetic ----------------------------------------------

ARITHMETIC_METHODS = frozenset(
    {
        "add",
        "sub",
        "mul",
        "neg",
        "inv",
        "div",
        "pow",
        "dot",
        "matmul",
        "matvec",
        "sum",
        "batch_inv",
        "evaluate",
        "evaluate_many",
        "evaluate_batch",
        "interpolate",
    }
)

_CHARGE_ATTRS = ("_count_add", "_count_mul", "_count_inv")


def _is_abstract(func: ast.FunctionDef) -> bool:
    for deco in func.decorator_list:
        name = deco.attr if isinstance(deco, ast.Attribute) else (
            deco.id if isinstance(deco, ast.Name) else None
        )
        if name in {"abstractmethod", "abstractproperty"}:
            return True
    body = [s for s in func.body if not _is_docstring(s)]
    if not body:
        return True
    if all(isinstance(s, (ast.Pass,)) or _is_ellipsis(s) for s in body):
        return True
    if len(body) == 1 and isinstance(body[0], ast.Raise):
        exc = body[0].exc
        name = None
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name):
            name = exc.id
        return name == "NotImplementedError"
    return False


def _is_docstring(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and isinstance(stmt.value.value, str)
    )


def _is_ellipsis(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is Ellipsis
    )


#: Receivers whose arithmetic methods do *not* charge a field counter.
_NON_CHARGING_ROOTS = frozenset({"numpy", "math", "operator", "functools", "itertools"})


def _charges_directly(module: FileContext, func: ast.FunctionDef) -> bool:
    """Does the body charge a counter or delegate to charging arithmetic?"""
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in _CHARGE_ATTRS:
                return True
            if attr in ARITHMETIC_METHODS or (
                attr in {"add", "mul", "inv", "tag"}
                and _mentions_counter(node.func.value)
            ):
                # Delegation: ``self.mul(...)``, ``field.add(...)``,
                # ``self.field.dot(...)``, ``counter.tag(...)`` — the callee
                # charges.  numpy/math receivers do not.
                resolved = module.resolve(node.func.value) or ""
                if resolved.split(".")[0] in _NON_CHARGING_ROOTS:
                    continue
                return True
    return False


def _mentions_counter(node: ast.expr) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and "counter" in sub.attr:
            return True
        if isinstance(sub, ast.Name) and "counter" in sub.id:
            return True
    return False


def _self_calls(func: ast.FunctionDef) -> set[str]:
    out = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            out.add(node.func.attr)
    return out


@register_rule
class UnchargedFieldOpRule(Rule):
    """CNT001 — gf arithmetic must charge the attached OperationCounter.

    The paper's throughput metric *is* the operation count; a fast path that
    forgets to charge silently inflates measured throughput.  A method
    satisfies the rule by charging (``self._count_*`` / ``counter.*``),
    by delegating to arithmetic that charges, or by appearing in the
    ``count-parity-allowlist`` (parity then verified by tests instead).
    """

    rule_id = "CNT001"
    description = "gf arithmetic method does not charge the OperationCounter"

    def check(self, module: FileContext) -> list[RawFinding]:
        if not module.config.path_matches(module.path, module.config.count_paths):
            return []
        class_pattern = re.compile(module.config.count_class_pattern)
        allow = set(module.config.count_parity_allowlist)
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not class_pattern.search(node.name):
                continue
            methods = {
                stmt.name: stmt
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            # Fixpoint over within-class delegation: ``evaluate_batch`` that
            # only calls ``self._evaluate_batch_canonical`` charges iff the
            # helper does.
            charging = {
                name
                for name, fn in methods.items()
                if not isinstance(fn, ast.AsyncFunctionDef)
                and _charges_directly(module, fn)
            }
            changed = True
            while changed:
                changed = False
                for name, fn in methods.items():
                    if name in charging or isinstance(fn, ast.AsyncFunctionDef):
                        continue
                    if _self_calls(fn) & charging:
                        charging.add(name)
                        changed = True
            for name, fn in methods.items():
                if name not in ARITHMETIC_METHODS:
                    continue
                if isinstance(fn, ast.AsyncFunctionDef):
                    continue
                if f"{node.name}.{name}" in allow:
                    continue
                if _is_abstract(fn) or name in charging:
                    continue
                findings.append(
                    RawFinding(
                        self.rule_id,
                        fn.lineno,
                        fn.col_offset,
                        f"{node.name}.{name} performs field arithmetic without "
                        "charging the attached OperationCounter (add it to "
                        "count-parity-allowlist only with a parity test)",
                    )
                )
        return findings


# -- RNG001: rng parameter shadowed by a fresh stream --------------------------------


@register_rule
class ShadowedRngParamRule(Rule):
    """RNG001 — a function accepting ``rng`` must not construct another one.

    ``def f(..., rng=None): rng = rng or default_rng(0)`` forks a hidden
    second stream; the caller believes it controls the randomness but does
    not.  Thread the caller's generator through, or take the ambient stream
    explicitly from :func:`repro.rng.default_stream`.
    """

    rule_id = "RNG001"
    description = "function with an rng parameter constructs its own RNG"

    def check(self, module: FileContext) -> list[RawFinding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = [
                a.arg
                for a in (
                    node.args.posonlyargs + node.args.args + node.args.kwonlyargs
                )
            ]
            if not any(p == "rng" or p.endswith("_rng") for p in params):
                continue
            for call in _rng_construction_calls(module, node):
                findings.append(
                    RawFinding(
                        self.rule_id,
                        call.lineno,
                        call.col_offset,
                        f"`{node.name}` accepts an rng parameter but constructs "
                        f"`{module.resolve(call.func)}`; thread the caller's "
                        "generator through instead",
                    )
                )
        return findings


# -- EXC001: swallowed protocol exceptions -------------------------------------------

PROTECTED_EXCEPTIONS = frozenset({"ConsensusError", "SecurityViolation"})
BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    type_node = handler.type
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else (
        [type_node] if type_node is not None else []
    )
    names = set()
    for node in nodes:
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _swallows(handler: ast.ExceptHandler) -> bool:
    """A handler whose body is only pass/.../continue discards the error."""
    return all(
        isinstance(stmt, (ast.Pass, ast.Continue)) or _is_docstring(stmt)
        or _is_ellipsis(stmt)
        for stmt in handler.body
    )


@register_rule
class SwallowedExceptionRule(Rule):
    """EXC001 — protocol safety errors must never be silently discarded.

    ``ConsensusError`` and ``SecurityViolation`` are the protocol's safety
    alarms; a handler that catches one and does nothing converts a Byzantine
    attack into silence.  Bare ``except:`` (and pass-only ``except
    Exception:``) additionally masks programming errors.
    """

    rule_id = "EXC001"
    description = "bare except or silently swallowed protocol exception"

    def check(self, module: FileContext) -> list[RawFinding]:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    RawFinding(
                        self.rule_id,
                        node.lineno,
                        node.col_offset,
                        "bare `except:` masks every error including protocol "
                        "safety violations; name the exceptions",
                    )
                )
                continue
            names = _handler_names(node)
            if names & PROTECTED_EXCEPTIONS and _swallows(node):
                caught = ", ".join(sorted(names & PROTECTED_EXCEPTIONS))
                findings.append(
                    RawFinding(
                        self.rule_id,
                        node.lineno,
                        node.col_offset,
                        f"`{caught}` caught and silently discarded; record or "
                        "re-raise protocol safety violations",
                    )
                )
            elif names & BROAD_EXCEPTIONS and _swallows(node):
                findings.append(
                    RawFinding(
                        self.rule_id,
                        node.lineno,
                        node.col_offset,
                        "broad exception caught and silently discarded",
                    )
                )
        return findings
