"""Common consensus-protocol interface and the decision record.

The execution phases (replicated or coded) only need two things from
consensus: the agreed command vector ``(X_1(t), ..., X_K(t))`` for the round
and the identity of the client that submitted each command.  Both protocols
return a :class:`ConsensusDecision` carrying exactly that, plus diagnostics
used by tests to verify the validity / consistency properties.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.consensus.command_pool import SubmittedCommand


@dataclass
class ConsensusDecision:
    """The outcome of one consensus round at one (honest) node.

    Attributes
    ----------
    round_index:
        The state-machine round the decision is for.
    commands:
        Array of shape ``(K, command_dim)``: the agreed input commands.
    clients:
        Length-``K`` list of client identifiers (``m_k^t``).
    selected:
        The underlying :class:`SubmittedCommand` objects.
    leader:
        The node that acted as leader/primary for the round.
    view:
        The view number in which the decision was reached (0 unless the
        initial leader misbehaved and a view change occurred).
    """

    round_index: int
    commands: np.ndarray
    clients: list[str]
    selected: list[SubmittedCommand] = field(default_factory=list)
    leader: str = ""
    view: int = 0

    def command_tuple(self) -> tuple[tuple[int, ...], ...]:
        """Hashable representation used to compare decisions across nodes.

        Memoised: decisions are immutable once returned, and the vectorised
        consensus plane shares one decision object across all honest nodes,
        so consistency checks and the protocol layer's decision selection
        hit the cache instead of re-tupling the command array per node.
        """
        cached = self.__dict__.get("_command_tuple")
        if cached is None:
            cached = tuple(
                tuple(int(v) for v in row) for row in np.asarray(self.commands)
            )
            self.__dict__["_command_tuple"] = cached
        return cached


class ConsensusProtocol(ABC):
    """A protocol that the honest nodes run to agree on the round's commands."""

    #: When True (the default) :meth:`decide_rounds` drives each round through
    #: the vectorised message plane — phase batches, one-shot batch
    #: signing/verification and array quorum tallies — provided the protocol
    #: implements ``_decide_round_vectorised`` and the network supports phase
    #: batches.  Set False to force the event-driven reference oracle.
    use_vectorised_plane: bool = True

    #: Rounds decided through a slow path (sequential :meth:`decide_round`,
    #: with or without bulk delivery) because the vectorised plane was
    #: unavailable or disabled.  Previously this fallback was silent; the
    #: counter makes a disabled fast path observable in experiment reports.
    fast_path_disabled: int = 0

    @abstractmethod
    def decide_round(self, round_index: int) -> dict[str, ConsensusDecision]:
        """Run one round of consensus.

        Returns a mapping from *honest* node id to that node's decision.
        Byzantine nodes do not produce meaningful decisions.  Tests check
        the paper's consistency property by asserting all returned decisions
        have equal :meth:`ConsensusDecision.command_tuple`.

        This event-driven, per-copy path is the *reference oracle* for the
        vectorised plane: ``decide_rounds`` must produce bit-identical
        decisions, rng consumption, counters and delivery log.
        """

    def _vectorised_plane_available(self) -> bool:
        """Whether :meth:`decide_rounds` can run on the vectorised plane."""
        network = getattr(self, "network", None)
        # An active link-fault state (drops, partitions, added latency from
        # the fault-injection plane) is only honoured by the scalar
        # send/deliver paths, so while faults are live the rounds take the
        # sequential oracle — which is bit-identical to the plane anyway,
        # and heals back to the fast path when the fault state clears.
        faults = getattr(network, "faults", None)
        return (
            self.use_vectorised_plane
            and getattr(network, "supports_phase_batches", False)
            and hasattr(self, "_decide_round_vectorised")
            and (faults is None or not faults.active)
        )

    def decide_rounds(
        self,
        first_round_index: int,
        count: int,
        prepare_round: "Callable[[int], None] | None" = None,
    ) -> list[dict[str, ConsensusDecision]]:
        """Decide ``count`` consecutive rounds starting at ``first_round_index``.

        Rounds are always decided in order — the command-pool selection for
        round ``t + 1`` depends on round ``t``'s decision being marked
        executed — but over a :class:`~repro.net.network.SimulatedNetwork`
        each round's phases run on the **vectorised message plane**
        (:class:`~repro.net.network.MessagePlane`): one
        struct-of-arrays batch per phase, batch signing/verification, one
        vectorised delay draw per phase and array quorum tallies instead of
        per-copy messages and mailbox drains.  When the plane is unavailable
        (no network, a network without phase batches, a protocol without a
        vectorised driver) or disabled via :attr:`use_vectorised_plane`, the
        rounds fall back to the sequential oracle — through bulk delivery if
        the network offers it — and :attr:`fast_path_disabled` is advanced by
        ``count`` so the slow path is observable instead of silent.

        ``prepare_round(offset)`` is invoked immediately before each round is
        decided; batched drivers use it to submit that round's client
        commands.  Submitting lazily (rather than all rounds up front)
        matters for bit-identity: the validity check consults the pool's
        submission history, so commands of *future* rounds must not be
        visible yet — an equivocating leader's forged payload could otherwise
        coincide with a later round's real command and pass validation that
        the sequential path would reject.  The returned per-round decision
        maps — and the rng/delay stream, message/signature counters and
        delivery log — are bit-identical to the
        submit-then-:meth:`decide_round` sequential loop.
        """
        if self._vectorised_plane_available():
            from repro.net.network import MessagePlane

            plane = MessagePlane(self.network, self.node_ids)
            decisions = []
            for offset in range(count):
                if prepare_round is not None:
                    prepare_round(offset)
                decisions.append(
                    self._decide_round_vectorised(first_round_index + offset, plane)
                )
            return decisions

        self.fast_path_disabled += count

        def _run() -> list[dict[str, ConsensusDecision]]:
            decisions = []
            for offset in range(count):
                if prepare_round is not None:
                    prepare_round(offset)
                decisions.append(self.decide_round(first_round_index + offset))
            return decisions

        network = getattr(self, "network", None)
        if network is None or not hasattr(network, "bulk_delivery"):
            return _run()
        with network.bulk_delivery():
            return _run()

    @property
    @abstractmethod
    def fault_tolerance(self) -> int:
        """Maximum number of Byzantine nodes the protocol tolerates."""
