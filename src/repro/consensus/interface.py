"""Common consensus-protocol interface and the decision record.

The execution phases (replicated or coded) only need two things from
consensus: the agreed command vector ``(X_1(t), ..., X_K(t))`` for the round
and the identity of the client that submitted each command.  Both protocols
return a :class:`ConsensusDecision` carrying exactly that, plus diagnostics
used by tests to verify the validity / consistency properties.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.consensus.command_pool import SubmittedCommand


@dataclass
class ConsensusDecision:
    """The outcome of one consensus round at one (honest) node.

    Attributes
    ----------
    round_index:
        The state-machine round the decision is for.
    commands:
        Array of shape ``(K, command_dim)``: the agreed input commands.
    clients:
        Length-``K`` list of client identifiers (``m_k^t``).
    selected:
        The underlying :class:`SubmittedCommand` objects.
    leader:
        The node that acted as leader/primary for the round.
    view:
        The view number in which the decision was reached (0 unless the
        initial leader misbehaved and a view change occurred).
    """

    round_index: int
    commands: np.ndarray
    clients: list[str]
    selected: list[SubmittedCommand] = field(default_factory=list)
    leader: str = ""
    view: int = 0

    def command_tuple(self) -> tuple[tuple[int, ...], ...]:
        """Hashable representation used to compare decisions across nodes."""
        return tuple(tuple(int(v) for v in row) for row in np.asarray(self.commands))


class ConsensusProtocol(ABC):
    """A protocol that the honest nodes run to agree on the round's commands."""

    @abstractmethod
    def decide_round(self, round_index: int) -> dict[str, ConsensusDecision]:
        """Run one round of consensus.

        Returns a mapping from *honest* node id to that node's decision.
        Byzantine nodes do not produce meaningful decisions.  Tests check
        the paper's consistency property by asserting all returned decisions
        have equal :meth:`ConsensusDecision.command_tuple`.
        """

    def decide_rounds(
        self,
        first_round_index: int,
        count: int,
        prepare_round: "Callable[[int], None] | None" = None,
    ) -> list[dict[str, ConsensusDecision]]:
        """Decide ``count`` consecutive rounds starting at ``first_round_index``.

        Rounds are always decided in order — the command-pool selection for
        round ``t + 1`` depends on round ``t``'s decision being marked
        executed — but when the protocol runs over a
        :class:`~repro.net.network.SimulatedNetwork` every broadcast in the
        batch is routed through its bulk delivery path
        (:meth:`SimulatedNetwork.deliver_all`), amortising the per-copy
        scheduler events and signature checks across the whole batch.

        ``prepare_round(offset)`` is invoked immediately before each round is
        decided; batched drivers use it to submit that round's client
        commands.  Submitting lazily (rather than all rounds up front)
        matters for bit-identity: the validity check consults the pool's
        submission history, so commands of *future* rounds must not be
        visible yet — an equivocating leader's forged payload could otherwise
        coincide with a later round's real command and pass validation that
        the sequential path would reject.  The returned per-round decision
        maps — and the rng/delay stream — are bit-identical to the
        submit-then-:meth:`decide_round` sequential loop.
        """
        def _run() -> list[dict[str, ConsensusDecision]]:
            decisions = []
            for offset in range(count):
                if prepare_round is not None:
                    prepare_round(offset)
                decisions.append(self.decide_round(first_round_index + offset))
            return decisions

        network = getattr(self, "network", None)
        if network is None or not hasattr(network, "bulk_delivery"):
            return _run()
        with network.bulk_delivery():
            return _run()

    @property
    @abstractmethod
    def fault_tolerance(self) -> int:
        """Maximum number of Byzantine nodes the protocol tolerates."""
