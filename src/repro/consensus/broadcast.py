"""Authenticated leader-broadcast consensus for synchronous networks.

This is the consensus protocol the paper assumes for the synchronous setting
("We use the Byzantine generals protocol in the consensus phase, where a
unique set of commands are proposed by a leader node and disseminated across
the network.  With the protection of digital signatures, the consistency
requirement can be satisfied for an arbitrary number b < N of malicious
nodes.").

The implementation is a two-step signed broadcast with leader rotation:

1. **Propose** — the round's leader signs and broadcasts a proposal carrying
   one command per state machine (selected FIFO from the client pool).
2. **Echo** — every node re-broadcasts the leader-signed proposal(s) it
   received, so after one extra synchronous step all honest nodes have seen
   every proposal any honest node has seen.
3. **Decide** — an honest node decides the unique valid leader-signed
   proposal; if it observed zero or conflicting proposals (a silent or
   equivocating leader) it moves to the next view, whose leader is the next
   node in round-robin order.  Because leaders rotate and ``b < N``, at most
   ``b`` view changes are needed before an honest leader decides the round.

Validity is enforced by checking each proposed command against the pool of
client submissions; consistency follows from the unforgeability of the
leader's signature plus the echo step.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConsensusError, LivenessError
from repro.consensus.command_pool import CommandPool, SubmittedCommand
from repro.consensus.interface import ConsensusDecision, ConsensusProtocol
from repro.net.byzantine import (
    ByzantineBehavior,
    EquivocatingBehavior,
    HonestBehavior,
    SilentBehavior,
    DelayingBehavior,
)
from repro.net.message import Message, MessageKind
from repro.net.network import SimulatedNetwork
from repro.rng import default_stream


class AuthenticatedBroadcastConsensus(ConsensusProtocol):
    """Signed leader-broadcast consensus (synchronous model).

    Parameters
    ----------
    network:
        The simulated network all nodes are registered on.
    node_ids:
        Ordered list of the ``N`` compute node identifiers.
    pool:
        The shared pool of client-submitted commands (clients broadcast to
        every node, so all honest nodes hold the same pool contents).
    behaviors:
        Mapping from node id to its :class:`ByzantineBehavior`; missing nodes
        are honest.
    """

    def __init__(
        self,
        network: SimulatedNetwork,
        node_ids: list[str],
        pool: CommandPool,
        behaviors: dict[str, ByzantineBehavior] | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not node_ids:
            raise ConsensusError("consensus needs at least one node")
        self.network = network
        self.node_ids = list(node_ids)
        self.pool = pool
        self.behaviors = dict(behaviors or {})
        self.rng = rng if rng is not None else default_stream()
        for node_id in self.node_ids:
            self.network.register(node_id)

    # -- protocol properties ------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def fault_tolerance(self) -> int:
        """Consistency holds for any ``b < N`` with signatures (Table 2 row 1)."""
        return self.num_nodes - 1

    def behavior_of(self, node_id: str) -> ByzantineBehavior:
        return self.behaviors.get(node_id, HonestBehavior())

    def honest_nodes(self) -> list[str]:
        return [n for n in self.node_ids if not self.behavior_of(n).is_faulty]

    def leader_for(self, round_index: int, view: int) -> str:
        return self.node_ids[(round_index + view) % self.num_nodes]

    # -- one round -------------------------------------------------------------------
    def decide_round(self, round_index: int) -> dict[str, ConsensusDecision]:
        selected = self.pool.peek_round()
        if any(entry is None for entry in selected):
            raise LivenessError(
                "every state machine needs at least one pending client command"
            )
        max_views = self.num_nodes
        for view in range(max_views):
            leader = self.leader_for(round_index, view)
            decisions = self._attempt_view(round_index, view, leader, selected)
            if decisions:
                # Remove the decided commands from the pool exactly once.
                sample = next(iter(decisions.values()))
                for k, entry in enumerate(sample.selected):
                    self.pool.mark_executed(k, entry)
                return decisions
        raise ConsensusError(
            f"no view with an honest leader within {max_views} attempts "
            "(more faults than nodes?)"
        )

    # -- vectorised message plane ------------------------------------------------------
    # ConsensusProtocol.decide_rounds drives batches of rounds through this
    # path by default: each propose/echo phase is dispatched and tallied as a
    # struct-of-arrays PhaseBatch instead of per-copy messages.  decide_round
    # above stays the event-driven reference oracle; decisions, rng stream,
    # counters and delivery log are bit-identical between the two.
    def _decide_round_vectorised(
        self, round_index: int, plane
    ) -> dict[str, ConsensusDecision]:
        selected = self.pool.peek_round()
        if any(entry is None for entry in selected):
            raise LivenessError(
                "every state machine needs at least one pending client command"
            )
        # Validity consults the pool, which only changes between rounds
        # (mark_executed), so the memo must not outlive this round.
        validity: dict[int, bool] = {}
        max_views = self.num_nodes
        for view in range(max_views):
            leader = self.leader_for(round_index, view)
            decisions = self._attempt_view_vectorised(
                round_index, view, leader, selected, plane, validity
            )
            if decisions:
                sample = next(iter(decisions.values()))
                for k, entry in enumerate(sample.selected):
                    self.pool.mark_executed(k, entry)
                return decisions
        raise ConsensusError(
            f"no view with an honest leader within {max_views} attempts "
            "(more faults than nodes?)"
        )

    def _attempt_view_vectorised(
        self,
        round_index: int,
        view: int,
        leader: str,
        selected: list[SubmittedCommand],
        plane,
        validity: dict[int, bool],
    ) -> dict[str, ConsensusDecision]:
        behavior = self.behavior_of(leader)
        broadcasts, sends = self._propose_actions(
            round_index, view, leader, behavior, selected
        )
        # Equivocation stays on the scalar path: targeted sends go through
        # the scheduler (consuming the rng exactly as the oracle does) and
        # surface at collection as stragglers.
        for message in sends:
            self.network.send(message)
        refs = [plane.register(message.payload) for message in broadcasts]
        batch = plane.broadcast_phase(broadcasts, refs)
        proposals = plane.collect_phase(
            batch, MessageKind.CONSENSUS_PROPOSAL, round_index
        )
        # Step 2: every honest node echoes what it received, in node order —
        # one batched phase instead of per-node broadcasts.
        echo_templates: list[Message] = []
        echo_refs: list[int] = []
        for j, node_id in enumerate(self.node_ids):
            if self.behavior_of(node_id).is_faulty:
                continue
            for message, ref in proposals.messages_for(j):
                if message.metadata.get("view") != view:
                    continue
                echo_templates.append(
                    Message(
                        sender=node_id,
                        recipient="*",
                        kind=MessageKind.CONSENSUS_VOTE,
                        round_index=round_index,
                        payload=message.payload,
                        metadata={
                            "view": view,
                            "leader_signature": message.signature,
                            "leader": message.sender,
                        },
                    )
                )
                echo_refs.append(ref)
        echo_batch = plane.broadcast_phase(echo_templates, echo_refs)
        echoes = plane.collect_phase(
            echo_batch, MessageKind.CONSENSUS_VOTE, round_index
        )
        # Step 3: decision at each honest node, deduplicating proposals by
        # memoised content key instead of re-tupling payloads per node.
        decisions: dict[str, ConsensusDecision] = {}
        decisions_by_ref: dict[int, ConsensusDecision] = {}
        for j, node_id in enumerate(self.node_ids):
            if self.behavior_of(node_id).is_faulty:
                continue
            seen: dict[tuple, int] = {}
            for message, ref in proposals.messages_for(j):
                if message.sender != leader or message.metadata.get("view") != view:
                    continue
                key = plane.content_key(ref, self._payload_key)
                if key not in seen:
                    seen[key] = ref
            for message, ref in echoes.messages_for(j):
                if message.metadata.get("view") != view:
                    continue
                if message.metadata.get("leader") != leader:
                    continue
                key = plane.content_key(ref, self._payload_key)
                if key not in seen:
                    seen[key] = ref
            valid_refs = [
                ref for ref in seen.values() if self._ref_valid(ref, plane, validity)
            ]
            if len(valid_refs) != 1:
                return {}
            ref = valid_refs[0]
            decision = decisions_by_ref.get(ref)
            if decision is None:
                decision = self._decision_from_payload(
                    round_index, view, leader, plane.payload(ref)
                )
                decisions_by_ref[ref] = decision
            decisions[node_id] = decision
        if not decisions:
            return {}
        tuples = {d.command_tuple() for d in decisions.values()}
        if len(tuples) != 1:
            raise ConsensusError("honest nodes decided different command vectors")
        return decisions

    def _ref_valid(self, ref: int, plane, validity: dict[int, bool]) -> bool:
        cached = validity.get(ref)
        if cached is None:
            cached = self._is_valid_proposal(plane.payload(ref))
            validity[ref] = cached
        return cached

    # -- internals ----------------------------------------------------------------------
    def _attempt_view(
        self,
        round_index: int,
        view: int,
        leader: str,
        selected: list[SubmittedCommand],
    ) -> dict[str, ConsensusDecision]:
        leader_behavior = self.behavior_of(leader)
        self._leader_propose(round_index, view, leader, leader_behavior, selected)
        # Step 1 timeout: collect the leader's proposal at every node.
        received = self.network.collect_all(
            self.node_ids, kind=MessageKind.CONSENSUS_PROPOSAL, round_index=round_index
        )
        # Step 2: every honest node echoes what it received.
        for node_id in self.node_ids:
            if self.behavior_of(node_id).is_faulty:
                continue  # faulty echoers at worst withhold; they cannot forge
            for message in received.get(node_id, []):
                if message.metadata.get("view") != view:
                    continue
                echo = Message(
                    sender=node_id,
                    recipient="*",
                    kind=MessageKind.CONSENSUS_VOTE,
                    round_index=round_index,
                    payload=message.payload,
                    metadata={"view": view, "leader_signature": message.signature,
                              "leader": message.sender},
                )
                self.network.broadcast(echo, recipients=self.node_ids)
        echoes = self.network.collect_all(
            self.node_ids, kind=MessageKind.CONSENSUS_VOTE, round_index=round_index
        )
        # Step 3: decision at each honest node.
        decisions: dict[str, ConsensusDecision] = {}
        for node_id in self.honest_nodes():
            proposals = self._distinct_proposals(
                view, leader, received.get(node_id, []), echoes.get(node_id, [])
            )
            valid = [p for p in proposals if self._is_valid_proposal(p)]
            if len(valid) != 1:
                # zero proposals (silent leader) or several (equivocation):
                # the node votes for a view change.
                return {}
            decisions[node_id] = self._decision_from_payload(
                round_index, view, leader, valid[0]
            )
        if not decisions:
            return {}
        # Consistency sanity check (should always hold for honest nodes).
        tuples = {d.command_tuple() for d in decisions.values()}
        if len(tuples) != 1:
            raise ConsensusError("honest nodes decided different command vectors")
        return decisions

    def _leader_propose(
        self,
        round_index: int,
        view: int,
        leader: str,
        behavior: ByzantineBehavior,
        selected: list[SubmittedCommand],
    ) -> None:
        broadcasts, sends = self._propose_actions(
            round_index, view, leader, behavior, selected
        )
        for message in sends:
            self.network.send(message)
        for message in broadcasts:
            self.network.broadcast(message, recipients=self.node_ids)

    def _propose_actions(
        self,
        round_index: int,
        view: int,
        leader: str,
        behavior: ByzantineBehavior,
        selected: list[SubmittedCommand],
    ) -> tuple[list[Message], list[Message]]:
        """The leader's propose step as ``(broadcasts, targeted sends)``.

        Shared by the event-driven oracle and the vectorised plane so the
        two paths dispatch identical messages by construction; a behavior
        either broadcasts or equivocates via sends, never both.
        """
        honest_payload = self._payload_from_selection(selected)
        if not behavior.is_faulty:
            proposal = Message(
                sender=leader,
                recipient="*",
                kind=MessageKind.CONSENSUS_PROPOSAL,
                round_index=round_index,
                payload=honest_payload,
                metadata={"view": view},
            )
            return [proposal], []
        if isinstance(behavior, (SilentBehavior, DelayingBehavior)):
            return [], []  # no proposal this view
        if isinstance(behavior, EquivocatingBehavior):
            # Different (still validly signed) proposals to different halves.
            midpoint = self.num_nodes // 2
            alt_payload = dict(honest_payload)
            alt_payload["commands"] = [
                [int(v) + 1 for v in row] for row in honest_payload["commands"]
            ]
            sends = [
                Message(
                    sender=leader,
                    recipient=node_id,
                    kind=MessageKind.CONSENSUS_PROPOSAL,
                    round_index=round_index,
                    payload=honest_payload if index < midpoint else alt_payload,
                    metadata={"view": view},
                )
                for index, node_id in enumerate(self.node_ids)
            ]
            return [], sends
        # Default Byzantine leader: propose a command nobody submitted.
        bogus = dict(honest_payload)
        bogus["commands"] = [[int(v) + 7 for v in row] for row in honest_payload["commands"]]
        bogus["clients"] = ["client:forged"] * len(honest_payload["clients"])
        proposal = Message(
            sender=leader,
            recipient="*",
            kind=MessageKind.CONSENSUS_PROPOSAL,
            round_index=round_index,
            payload=bogus,
            metadata={"view": view},
        )
        return [proposal], []

    @staticmethod
    def _payload_from_selection(selected: list[SubmittedCommand]) -> dict:
        # Sequences ride along so the decided entries can be removed from the
        # pool keyed on their unique submission sequence (mark_executed).
        return {
            "commands": [list(entry.command) for entry in selected],
            "clients": [entry.client_id for entry in selected],
            "sequences": [entry.sequence for entry in selected],
        }

    def _distinct_proposals(
        self, view: int, leader: str, direct: list[Message], echoes: list[Message]
    ) -> list[dict]:
        seen: dict[tuple, dict] = {}
        for message in direct:
            if message.sender != leader or message.metadata.get("view") != view:
                continue
            key = self._payload_key(message.payload)
            seen[key] = message.payload
        for message in echoes:
            if message.metadata.get("view") != view:
                continue
            if message.metadata.get("leader") != leader:
                continue
            key = self._payload_key(message.payload)
            seen.setdefault(key, message.payload)
        return list(seen.values())

    @staticmethod
    def _payload_key(payload: dict) -> tuple:
        # Sequences are part of the proposal identity: a leader equivocating
        # only on sequences must be detected like any other equivocation.
        return (
            tuple(tuple(int(v) for v in row) for row in payload["commands"]),
            tuple(int(v) for v in payload.get("sequences") or ()),
        )

    def _is_valid_proposal(self, payload: dict) -> bool:
        commands = payload.get("commands")
        clients = payload.get("clients")
        sequences = payload.get("sequences")
        if not commands or not clients or len(commands) != self.pool.num_machines:
            return False
        if not sequences or len(sequences) != len(commands):
            return False
        for k, (command, client, sequence) in enumerate(
            zip(commands, clients, sequences)
        ):
            if not self.pool.was_submitted(k, command, client):
                return False
            # Bind the (unsigned) sequence back to a pending pool entry so a
            # forged sequence invalidates the proposal here instead of
            # derailing mark_executed after the decision.
            if not self.pool.matches_pending(k, command, client, sequence):
                return False
        return True

    def _decision_from_payload(
        self, round_index: int, view: int, leader: str, payload: dict
    ) -> ConsensusDecision:
        commands = np.array(payload["commands"], dtype=np.int64)
        clients = list(payload["clients"])
        # A payload missing its sequences (a pre-redesign or forged proposal)
        # yields sentinel -1 entries, which mark_executed rejects loudly.
        sequences = list(payload.get("sequences") or [-1] * len(clients))
        selected = [
            SubmittedCommand(
                machine_index=k,
                client_id=clients[k],
                command=tuple(int(v) for v in commands[k]),
                sequence=int(sequences[k]),
            )
            for k in range(commands.shape[0])
        ]
        return ConsensusDecision(
            round_index=round_index,
            commands=commands,
            clients=clients,
            selected=selected,
            leader=leader,
            view=view,
        )
