"""Simplified PBFT consensus for partially synchronous networks.

The paper employs PBFT in the partially synchronous setting, which requires
``N >= 3b + 1`` nodes.  The implementation here follows the classic
three-phase structure:

1. **Pre-prepare** — the view's primary signs and broadcasts the proposed
   command vector.
2. **Prepare** — every honest node that received a valid pre-prepare
   broadcasts a prepare vote for its digest.
3. **Commit** — a node that collects ``2f + 1`` matching prepares broadcasts
   a commit vote; a node that collects ``2f + 1`` matching commits decides.

If a view fails to decide within its timeout (silent or equivocating primary,
or the network has not reached GST yet), all honest nodes move to the next
view with the next primary in round-robin order.  After GST and with an
honest primary, a view always decides — which is the paper's liveness
argument.  Safety (no two honest nodes decide differently) comes from the
quorum intersection of any two ``2f + 1`` subsets of ``3f + 1`` nodes.

The view-change subprotocol is simplified: because every round decides a
fresh, independent command vector and no honest node ever decides in a failed
view (deciding requires ``2f + 1`` commits, impossible when the primary
equivocates between at most ``f`` faulty supporters per branch), carrying
prepared certificates across views is unnecessary for safety in this setting.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConsensusError, LivenessError
from repro.consensus.command_pool import CommandPool, SubmittedCommand
from repro.consensus.interface import ConsensusDecision, ConsensusProtocol
from repro.net.byzantine import (
    ByzantineBehavior,
    EquivocatingBehavior,
    HonestBehavior,
    SilentBehavior,
    DelayingBehavior,
)
from repro.net.message import Message, MessageKind
from repro.net.network import SimulatedNetwork
from repro.rng import default_stream


class PBFTConsensus(ConsensusProtocol):
    """Three-phase PBFT over the simulated (partially synchronous) network."""

    def __init__(
        self,
        network: SimulatedNetwork,
        node_ids: list[str],
        pool: CommandPool,
        behaviors: dict[str, ByzantineBehavior] | None = None,
        rng: np.random.Generator | None = None,
        max_views: int = 32,
        view_timeout: float | None = None,
    ) -> None:
        if len(node_ids) < 4:
            raise ConsensusError("PBFT needs at least 4 nodes (N >= 3b + 1 with b >= 1)")
        self.network = network
        self.node_ids = list(node_ids)
        self.pool = pool
        self.behaviors = dict(behaviors or {})
        self.rng = rng if rng is not None else default_stream()
        self.max_views = int(max_views)
        self.view_timeout = view_timeout
        for node_id in self.node_ids:
            self.network.register(node_id)

    # -- protocol properties --------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.node_ids)

    @property
    def fault_tolerance(self) -> int:
        """PBFT tolerates ``f = floor((N - 1) / 3)`` Byzantine nodes."""
        return (self.num_nodes - 1) // 3

    @property
    def quorum(self) -> int:
        return 2 * self.fault_tolerance + 1

    def behavior_of(self, node_id: str) -> ByzantineBehavior:
        return self.behaviors.get(node_id, HonestBehavior())

    def honest_nodes(self) -> list[str]:
        return [n for n in self.node_ids if not self.behavior_of(n).is_faulty]

    def primary_for(self, round_index: int, view: int) -> str:
        return self.node_ids[(round_index + view) % self.num_nodes]

    # -- one round --------------------------------------------------------------------
    def decide_round(self, round_index: int) -> dict[str, ConsensusDecision]:
        selected = self.pool.peek_round()
        if any(entry is None for entry in selected):
            raise LivenessError(
                "every state machine needs at least one pending client command"
            )
        for view in range(self.max_views):
            primary = self.primary_for(round_index, view)
            decisions = self._attempt_view(round_index, view, primary, selected)
            if decisions:
                sample = next(iter(decisions.values()))
                for k, entry in enumerate(sample.selected):
                    self.pool.mark_executed(k, entry)
                return decisions
        raise ConsensusError(
            f"PBFT failed to decide round {round_index} within {self.max_views} views "
            "(network may not have stabilised or too many faults)"
        )

    # -- vectorised message plane ------------------------------------------------------
    # ConsensusProtocol.decide_rounds drives batches of rounds through this
    # path by default: each pre-prepare/prepare/commit phase is dispatched
    # and quorum-tallied as a struct-of-arrays PhaseBatch instead of per-copy
    # messages and mailbox drains.  decide_round above stays the event-driven
    # reference oracle; decisions, rng stream, counters and delivery log are
    # bit-identical between the two.
    def _decide_round_vectorised(
        self, round_index: int, plane
    ) -> dict[str, ConsensusDecision]:
        selected = self.pool.peek_round()
        if any(entry is None for entry in selected):
            raise LivenessError(
                "every state machine needs at least one pending client command"
            )
        # Validity consults the pool, which only changes between rounds
        # (mark_executed), so the memo must not outlive this round.
        validity: dict[int, bool] = {}
        for view in range(self.max_views):
            primary = self.primary_for(round_index, view)
            decisions = self._attempt_view_vectorised(
                round_index, view, primary, selected, plane, validity
            )
            if decisions:
                sample = next(iter(decisions.values()))
                for k, entry in enumerate(sample.selected):
                    self.pool.mark_executed(k, entry)
                return decisions
        raise ConsensusError(
            f"PBFT failed to decide round {round_index} within {self.max_views} views "
            "(network may not have stabilised or too many faults)"
        )

    def _attempt_view_vectorised(
        self,
        round_index: int,
        view: int,
        primary: str,
        selected: list[SubmittedCommand],
        plane,
        validity: dict[int, bool],
    ) -> dict[str, ConsensusDecision]:
        timeout = self.view_timeout or self.network.delay_model.synchronous_bound
        payload = {
            "commands": [list(entry.command) for entry in selected],
            "clients": [entry.client_id for entry in selected],
            "sequences": [entry.sequence for entry in selected],
        }
        broadcasts, sends = self._pre_prepare_actions(round_index, view, primary, payload)
        # Equivocation stays on the scalar path: targeted sends go through
        # the scheduler (consuming the rng exactly as the oracle does) and
        # surface at collection as stragglers.
        for message in sends:
            self.network.send(message)
        refs = [plane.register(message.payload) for message in broadcasts]
        batch = plane.broadcast_phase(broadcasts, refs)
        pre_prepares = plane.collect_phase(
            batch, MessageKind.CONSENSUS_PROPOSAL, round_index, timeout
        )
        # Prepare phase: honest nodes vote for the digest they received from
        # the primary, provided the proposal is valid — one batched phase.
        accepted: dict[int, int] = {}  # node index -> accepted payload ref
        vote_ref_of: dict[int, int] = {}  # node index -> its vote-payload ref
        prepare_templates: list[Message] = []
        prepare_refs: list[int] = []
        for j, node_id in enumerate(self.node_ids):
            if self.behavior_of(node_id).is_faulty:
                continue
            matching = [
                (message, ref)
                for message, ref in pre_prepares.messages_for(j)
                if message.sender == primary and message.metadata.get("view") == view
            ]
            if len(matching) != 1:
                continue  # silent or equivocating primary: no prepare vote
            _, ref = matching[0]
            if not self._ref_valid(ref, plane, validity):
                continue
            accepted[j] = ref
            vote_payload = self._vote_payload_for(ref, plane)
            vote_ref_of[j] = plane.register(vote_payload)
            prepare_templates.append(
                Message(
                    sender=node_id,
                    recipient="*",
                    kind=MessageKind.CONSENSUS_PREPARE,
                    round_index=round_index,
                    payload=vote_payload,
                    metadata={"view": view},
                )
            )
            prepare_refs.append(vote_ref_of[j])
        prepare_batch = plane.broadcast_phase(prepare_templates, prepare_refs)
        prepares = plane.collect_phase(
            prepare_batch, MessageKind.CONSENSUS_PREPARE, round_index, timeout
        )
        # Commit phase: a column sum per distinct digest replaces the
        # per-node supporter-set scan.
        prepare_counts = self._quorum_counts(prepares, view, vote_ref_of, plane)
        commit_templates: list[Message] = []
        commit_refs: list[int] = []
        for j, node_id in enumerate(self.node_ids):
            if self.behavior_of(node_id).is_faulty:
                continue
            if j not in accepted:
                continue
            if int(prepare_counts[vote_ref_of[j]][j]) >= self.quorum:
                commit_templates.append(
                    Message(
                        sender=node_id,
                        recipient="*",
                        kind=MessageKind.CONSENSUS_COMMIT,
                        round_index=round_index,
                        payload=plane.payload(vote_ref_of[j]),
                        metadata={"view": view},
                    )
                )
                commit_refs.append(vote_ref_of[j])
        commit_batch = plane.broadcast_phase(commit_templates, commit_refs)
        commits = plane.collect_phase(
            commit_batch, MessageKind.CONSENSUS_COMMIT, round_index, timeout
        )
        commit_counts = self._quorum_counts(commits, view, vote_ref_of, plane)
        decisions: dict[str, ConsensusDecision] = {}
        decisions_by_ref: dict[int, ConsensusDecision] = {}
        for j, node_id in enumerate(self.node_ids):
            if self.behavior_of(node_id).is_faulty:
                continue
            if j not in accepted:
                continue
            if int(commit_counts[vote_ref_of[j]][j]) >= self.quorum:
                ref = accepted[j]
                decision = decisions_by_ref.get(ref)
                if decision is None:
                    decision = self._decision_from_payload(
                        round_index, view, primary, plane.payload(ref)
                    )
                    decisions_by_ref[ref] = decision
                decisions[node_id] = decision
        if not decisions:
            return {}
        tuples = {d.command_tuple() for d in decisions.values()}
        if len(tuples) != 1:
            raise ConsensusError("PBFT safety violation: conflicting decisions")
        # A view only "succeeds" for the round when every honest node decided;
        # otherwise the stragglers would need the (simplified-away) checkpoint
        # sync, so we conservatively run another view for everyone.
        if set(decisions) != set(self.honest_nodes()):
            return {}
        return decisions

    def _quorum_counts(
        self, phase_view, view: int, vote_ref_of: dict[int, int], plane
    ) -> dict[int, "np.ndarray"]:
        """Per-node supporter counts for each distinct vote-payload ref."""
        counts: dict[int, np.ndarray] = {}
        for vote_ref in sorted(set(vote_ref_of.values())):
            digest = plane.payload(vote_ref)["digest"]
            counts[vote_ref] = phase_view.supporter_counts(
                view,
                vote_ref,
                lambda m, d=digest: (
                    m.metadata.get("view") == view and m.payload.get("digest") == d
                ),
            )
        return counts

    def _vote_payload_for(self, ref: int, plane) -> dict:
        """The interned ``{"digest": ...}`` vote payload for a proposal ref.

        One shared dict per digest means the signing normalisation and the
        batch payload-ref column collapse across all voters; the oracle
        builds a fresh but content-equal dict per vote, so signatures match.
        """
        digest_cache = plane.scratch.setdefault("pbft_digest_by_ref", {})
        digest = digest_cache.get(ref)
        if digest is None:
            digest = self._digest(plane.payload(ref))
            digest_cache[ref] = digest
        vote_cache = plane.scratch.setdefault("pbft_vote_payloads", {})
        vote_payload = vote_cache.get(digest)
        if vote_payload is None:
            vote_payload = {"digest": digest}
            vote_cache[digest] = vote_payload
        return vote_payload

    def _ref_valid(self, ref: int, plane, validity: dict[int, bool]) -> bool:
        cached = validity.get(ref)
        if cached is None:
            cached = self._is_valid_proposal(plane.payload(ref))
            validity[ref] = cached
        return cached

    # -- internals ----------------------------------------------------------------------
    def _attempt_view(
        self,
        round_index: int,
        view: int,
        primary: str,
        selected: list[SubmittedCommand],
    ) -> dict[str, ConsensusDecision]:
        timeout = self.view_timeout or self.network.delay_model.synchronous_bound
        # Sequences ride along so the decided entries can be removed from the
        # pool keyed on their unique submission sequence (mark_executed);
        # they are covered by the digest and bound to pending pool entries by
        # the validity check, so they cannot be forged or equivocated on.
        payload = {
            "commands": [list(entry.command) for entry in selected],
            "clients": [entry.client_id for entry in selected],
            "sequences": [entry.sequence for entry in selected],
        }
        self._primary_pre_prepare(round_index, view, primary, payload)
        pre_prepares = self.network.collect_all(
            self.node_ids,
            kind=MessageKind.CONSENSUS_PROPOSAL,
            round_index=round_index,
            timeout=timeout,
        )
        # Prepare phase: honest nodes vote for the digest they received from
        # the primary, provided the proposal is valid.
        accepted_payloads: dict[str, dict] = {}
        for node_id in self.honest_nodes():
            proposals = [
                m for m in pre_prepares.get(node_id, [])
                if m.sender == primary and m.metadata.get("view") == view
            ]
            if len(proposals) != 1:
                continue  # silent or equivocating primary: no prepare vote
            proposal_payload = proposals[0].payload
            if not self._is_valid_proposal(proposal_payload):
                continue
            accepted_payloads[node_id] = proposal_payload
            vote = Message(
                sender=node_id,
                recipient="*",
                kind=MessageKind.CONSENSUS_PREPARE,
                round_index=round_index,
                payload={"digest": self._digest(proposal_payload)},
                metadata={"view": view},
            )
            self.network.broadcast(vote, recipients=self.node_ids)
        prepares = self.network.collect_all(
            self.node_ids,
            kind=MessageKind.CONSENSUS_PREPARE,
            round_index=round_index,
            timeout=timeout,
        )
        # Commit phase.
        for node_id in self.honest_nodes():
            if node_id not in accepted_payloads:
                continue
            digest = self._digest(accepted_payloads[node_id])
            supporting = {
                m.sender
                for m in prepares.get(node_id, [])
                if m.metadata.get("view") == view and m.payload.get("digest") == digest
            }
            if len(supporting) >= self.quorum:
                commit = Message(
                    sender=node_id,
                    recipient="*",
                    kind=MessageKind.CONSENSUS_COMMIT,
                    round_index=round_index,
                    payload={"digest": digest},
                    metadata={"view": view},
                )
                self.network.broadcast(commit, recipients=self.node_ids)
        commits = self.network.collect_all(
            self.node_ids,
            kind=MessageKind.CONSENSUS_COMMIT,
            round_index=round_index,
            timeout=timeout,
        )
        decisions: dict[str, ConsensusDecision] = {}
        for node_id in self.honest_nodes():
            if node_id not in accepted_payloads:
                continue
            digest = self._digest(accepted_payloads[node_id])
            supporting = {
                m.sender
                for m in commits.get(node_id, [])
                if m.metadata.get("view") == view and m.payload.get("digest") == digest
            }
            if len(supporting) >= self.quorum:
                decisions[node_id] = self._decision_from_payload(
                    round_index, view, primary, accepted_payloads[node_id]
                )
        if not decisions:
            return {}
        tuples = {d.command_tuple() for d in decisions.values()}
        if len(tuples) != 1:
            raise ConsensusError("PBFT safety violation: conflicting decisions")
        # A view only "succeeds" for the round when every honest node decided;
        # otherwise the stragglers would need the (simplified-away) checkpoint
        # sync, so we conservatively run another view for everyone.
        if set(decisions) != set(self.honest_nodes()):
            return {}
        return decisions

    def _primary_pre_prepare(
        self, round_index: int, view: int, primary: str, payload: dict
    ) -> None:
        broadcasts, sends = self._pre_prepare_actions(round_index, view, primary, payload)
        for message in sends:
            self.network.send(message)
        for message in broadcasts:
            self.network.broadcast(message, recipients=self.node_ids)

    def _pre_prepare_actions(
        self, round_index: int, view: int, primary: str, payload: dict
    ) -> tuple[list[Message], list[Message]]:
        """The primary's pre-prepare step as ``(broadcasts, targeted sends)``.

        Shared by the event-driven oracle and the vectorised plane so the
        two paths dispatch identical messages by construction; a behavior
        either broadcasts or equivocates via sends, never both.
        """
        behavior = self.behavior_of(primary)
        if not behavior.is_faulty:
            message = Message(
                sender=primary,
                recipient="*",
                kind=MessageKind.CONSENSUS_PROPOSAL,
                round_index=round_index,
                payload=payload,
                metadata={"view": view},
            )
            return [message], []
        if isinstance(behavior, (SilentBehavior, DelayingBehavior)):
            return [], []
        if isinstance(behavior, EquivocatingBehavior):
            alt = dict(payload)
            alt["commands"] = [[int(v) + 1 for v in row] for row in payload["commands"]]
            midpoint = self.num_nodes // 2
            sends = [
                Message(
                    sender=primary,
                    recipient=node_id,
                    kind=MessageKind.CONSENSUS_PROPOSAL,
                    round_index=round_index,
                    payload=payload if index < midpoint else alt,
                    metadata={"view": view},
                )
                for index, node_id in enumerate(self.node_ids)
            ]
            return [], sends
        bogus = dict(payload)
        bogus["clients"] = ["client:forged"] * len(payload["clients"])
        message = Message(
            sender=primary,
            recipient="*",
            kind=MessageKind.CONSENSUS_PROPOSAL,
            round_index=round_index,
            payload=bogus,
            metadata={"view": view},
        )
        return [message], []

    def _is_valid_proposal(self, payload: dict) -> bool:
        commands = payload.get("commands")
        clients = payload.get("clients")
        sequences = payload.get("sequences")
        if not commands or not clients or len(commands) != self.pool.num_machines:
            return False
        if not sequences or len(sequences) != len(commands):
            return False
        for k, (command, client, sequence) in enumerate(
            zip(commands, clients, sequences)
        ):
            if not self.pool.was_submitted(k, command, client):
                return False
            # Bind the (unsigned) sequence back to a pending pool entry so a
            # forged sequence invalidates the pre-prepare here instead of
            # derailing mark_executed after the decision.
            if not self.pool.matches_pending(k, command, client, sequence):
                return False
        return True

    @staticmethod
    def _digest(payload: dict) -> str:
        import hashlib

        canonical = repr(
            (
                tuple(tuple(int(v) for v in row) for row in payload["commands"]),
                tuple(payload["clients"]),
                tuple(int(v) for v in payload.get("sequences") or ()),
            )
        ).encode()
        return hashlib.sha256(canonical).hexdigest()

    def _decision_from_payload(
        self, round_index: int, view: int, primary: str, payload: dict
    ) -> ConsensusDecision:
        commands = np.array(payload["commands"], dtype=np.int64)
        clients = list(payload["clients"])
        # A payload missing its sequences (a pre-redesign or forged proposal)
        # yields sentinel -1 entries, which mark_executed rejects loudly.
        sequences = list(payload.get("sequences") or [-1] * len(clients))
        selected = [
            SubmittedCommand(
                machine_index=k,
                client_id=clients[k],
                command=tuple(int(v) for v in commands[k]),
                sequence=int(sequences[k]),
            )
            for k in range(commands.shape[0])
        ]
        return ConsensusDecision(
            round_index=round_index,
            commands=commands,
            clients=clients,
            selected=selected,
            leader=primary,
            view=view,
        )
