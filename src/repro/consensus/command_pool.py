"""Client command submission pools.

Clients broadcast their commands to all compute nodes (Figure 2(a) of the
paper); each node therefore holds, per state machine ``k``, a pool of pending
commands.  The consensus phase selects one command per machine per round and
records which client submitted it (``m_k^t``), so the execution phase can
return the output ``Y_k(t)`` to the right client.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.exceptions import ConfigurationError, ConsensusError


class SequenceAllocator:
    """A monotone counter handing out submission sequence numbers.

    One pool normally owns its own allocator, but several pools can share
    one — the sharded service gives every shard's ingress pool the same
    allocator so ticket sequences stay globally unique (and globally ordered
    by submission) across shards.
    """

    def __init__(self, start: int = 0) -> None:
        self._next = int(start)

    def allocate(self) -> int:
        value = self._next
        self._next += 1
        return value

    @property
    def issued(self) -> int:
        """How many sequences have been handed out so far."""
        return self._next


@dataclass(frozen=True)
class SubmittedCommand:
    """A client command waiting to be executed on a specific state machine."""

    machine_index: int
    client_id: str
    command: tuple[int, ...]
    sequence: int

    def as_array(self) -> np.ndarray:
        return np.array(self.command, dtype=np.int64)


@dataclass
class CommandPool:
    """Pending commands for ``num_machines`` state machines.

    The pool preserves submission order per machine; the default selection
    rule (used by honest leaders) is FIFO, which together with the validity
    check gives the liveness property: every submitted command is eventually
    selected.  Queues are :class:`collections.deque`\\ s so the FIFO
    ``dequeue_next`` pop is O(1) even under deep per-machine backlogs
    (``list.pop(0)`` made a full drain quadratic).
    """

    num_machines: int
    sequence_source: SequenceAllocator | None = None
    _queues: list[deque[SubmittedCommand]] = field(default_factory=list)
    _history: set[tuple[int, tuple[int, ...], str]] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.num_machines < 1:
            raise ConfigurationError(
                f"command pool needs at least one machine, got {self.num_machines}"
            )
        if self.sequence_source is None:
            self.sequence_source = SequenceAllocator()
        if not self._queues:
            self._queues = [deque() for _ in range(self.num_machines)]

    # -- submission -----------------------------------------------------------------
    def submit(self, machine_index: int, client_id: str, command: Iterable[int]) -> SubmittedCommand:
        """Record a client command for machine ``machine_index``."""
        self._check_machine(machine_index)
        entry = SubmittedCommand(
            machine_index=int(machine_index),
            client_id=str(client_id),
            command=tuple(int(v) for v in command),
            sequence=self.sequence_source.allocate(),
        )
        self._queues[machine_index].append(entry)
        self._history.add((entry.machine_index, entry.command, entry.client_id))
        return entry

    def canonical_round(self, commands: np.ndarray) -> np.ndarray:
        """Validate and shape one round of commands to ``(num_machines, dim)``.

        A flat array is split evenly across the machines; an indivisible (or
        empty) flat length raises :class:`ConfigurationError` with the actual
        sizes instead of an opaque numpy reshape error.
        """
        arr = np.asarray(commands)
        if arr.ndim == 1:
            if arr.size == 0 or arr.size % self.num_machines != 0:
                raise ConfigurationError(
                    f"flat command array of {arr.size} elements cannot be split "
                    f"evenly across {self.num_machines} machines"
                )
            arr = arr.reshape(self.num_machines, -1)
        if arr.shape[0] != self.num_machines:
            raise ConfigurationError(
                f"expected {self.num_machines} rows, got {arr.shape[0]}"
            )
        return arr

    def submit_batch(
        self, commands: np.ndarray, client_ids: list[str] | None = None
    ) -> list[SubmittedCommand]:
        """Submit one command per machine (row ``k`` goes to machine ``k``)."""
        arr = self.canonical_round(commands)
        out = []
        for k in range(self.num_machines):
            client = client_ids[k] if client_ids else f"client:{k}"
            out.append(self.submit(k, client, arr[k]))
        return out

    # -- selection -------------------------------------------------------------------
    def peek_next(self, machine_index: int) -> SubmittedCommand | None:
        """The command an honest leader would propose next for this machine."""
        self._check_machine(machine_index)
        queue = self._queues[machine_index]
        return queue[0] if queue else None

    def peek_round(self) -> list[SubmittedCommand | None]:
        """Next command for every machine (``None`` where the pool is empty)."""
        return [self.peek_next(k) for k in range(self.num_machines)]

    def dequeue_next(self, machine_index: int) -> SubmittedCommand | None:
        """Pop and return the FIFO-next command for ``machine_index``.

        The ticket-aware dequeue used by the round scheduler: the returned
        entry carries its unique ``sequence``, which the service maps back to
        the submitting :class:`~repro.service.tickets.CommandTicket` when the
        round's outputs arrive.  Returns ``None`` when the queue is empty.
        """
        self._check_machine(machine_index)
        queue = self._queues[machine_index]
        if not queue:
            return None
        return queue.popleft()

    def pending_entries(self, machine_index: int) -> tuple[SubmittedCommand, ...]:
        """Snapshot of the machine's pending queue, in FIFO order.

        The candidate view a :class:`~repro.service.qos.SelectionPolicy`
        chooses from when the round scheduler fills the machine's slot; a
        snapshot (not the live deque), so a policy cannot mutate the pool.
        """
        self._check_machine(machine_index)
        return tuple(self._queues[machine_index])

    def dequeue_sequence(self, machine_index: int, sequence: int) -> SubmittedCommand:
        """Pop the pending entry with ``sequence`` (selection-policy dequeue).

        The non-FIFO counterpart of :meth:`dequeue_next`: a selection policy
        picked this entry out of :meth:`pending_entries`, so it must still be
        pending — a missing sequence means the policy returned an entry it
        was never offered, which is a scheduler bug, not traffic.
        """
        self._check_machine(machine_index)
        queue = self._queues[machine_index]
        for i, entry in enumerate(queue):
            if entry.sequence == int(sequence):
                del queue[i]
                return entry
        raise ConfigurationError(
            f"no pending entry with sequence {sequence} for machine "
            f"{machine_index} — selection policy returned a stale candidate"
        )

    def mark_executed(self, machine_index: int, command: SubmittedCommand) -> None:
        """Remove a decided command from the pool, keyed by its ``sequence``.

        Consensus decides concrete pool entries, so removal matches on the
        unique submission ``sequence`` — matching by ``(command, client_id)``
        would silently remove the wrong entry when a client resubmits the
        same payload.  A decided command that is *not* in the pool (unknown
        sequence, or a sequence whose payload/client was tampered with) is a
        consensus-safety problem and raises :class:`ConsensusError` instead
        of being ignored.
        """
        self._check_machine(machine_index)
        queue = self._queues[machine_index]
        for i, entry in enumerate(queue):
            if entry.sequence == command.sequence:
                if (
                    entry.command != command.command
                    or entry.client_id != command.client_id
                ):
                    raise ConsensusError(
                        f"decided command for machine {machine_index} has sequence "
                        f"{command.sequence} but its payload/client does not match "
                        "the pool entry — decision tampered with"
                    )
                del queue[i]
                return
        raise ConsensusError(
            f"decided command with sequence {command.sequence} for machine "
            f"{machine_index} is not pending in the pool — consensus decided "
            "an unknown command"
        )

    def was_submitted(self, machine_index: int, command: Iterable[int], client_id: str) -> bool:
        """Validity check: was this command really submitted by this client?"""
        return (
            int(machine_index),
            tuple(int(v) for v in command),
            str(client_id),
        ) in self._history

    def matches_pending(
        self,
        machine_index: int,
        command: Iterable[int],
        client_id: str,
        sequence: int,
    ) -> bool:
        """Validity check: does this exact entry currently sit in the pool?

        Proposal sequences are not covered by signatures or digests, so
        consensus validity must bind them back to the pool: a proposal entry
        is only valid when a *pending* entry with that sequence exists and
        its command/client match.  This keeps a Byzantine leader from
        forging sequences onto otherwise-valid payloads — such a proposal is
        simply invalid (view change) instead of surfacing later as a
        :class:`ConsensusError` from :meth:`mark_executed`.
        """
        self._check_machine(machine_index)
        seq = int(sequence)
        for entry in self._queues[machine_index]:
            if entry.sequence == seq:
                return entry.command == tuple(
                    int(v) for v in command
                ) and entry.client_id == str(client_id)
        return False

    def pending(self, machine_index: int) -> int:
        self._check_machine(machine_index)
        return len(self._queues[machine_index])

    def total_pending(self) -> int:
        return sum(len(q) for q in self._queues)

    def pending_machines(self) -> int:
        """Number of machines with at least one queued command (batch fill)."""
        return sum(1 for q in self._queues if q)

    def _check_machine(self, machine_index: int) -> None:
        if not 0 <= machine_index < self.num_machines:
            raise ConfigurationError(
                f"machine index {machine_index} out of range for {self.num_machines} machines"
            )
