"""Consensus-phase protocols.

CSM reuses standard consensus machinery unchanged (the paper: "CSM uses the
same consensus protocols to decide on the input commands").  Two protocols
are provided, matching the two network models:

* :class:`~repro.consensus.broadcast.AuthenticatedBroadcastConsensus` — a
  signed leader-broadcast protocol in the style of the Byzantine Generals
  solution with signatures; tolerates any number ``b < N`` of faults for
  consistency in a synchronous network.
* :class:`~repro.consensus.pbft.PBFTConsensus` — a simplified three-phase
  PBFT (pre-prepare / prepare / commit) requiring ``N >= 3b + 1`` in a
  partially synchronous network.

Both decide, per round, on a vector of input commands — one per state
machine — drawn from the :class:`~repro.consensus.command_pool.CommandPool`
of client submissions, and both report which client submitted each decided
command so outputs can be routed back.
"""

from repro.consensus.command_pool import CommandPool, SubmittedCommand
from repro.consensus.interface import ConsensusProtocol, ConsensusDecision
from repro.consensus.broadcast import AuthenticatedBroadcastConsensus
from repro.consensus.pbft import PBFTConsensus

__all__ = [
    "CommandPool",
    "SubmittedCommand",
    "ConsensusProtocol",
    "ConsensusDecision",
    "AuthenticatedBroadcastConsensus",
    "PBFTConsensus",
]
