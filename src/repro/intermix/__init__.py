"""INTERMIX — information-theoretically verifiable matrix-vector multiplication.

Section 6 of the paper introduces INTERMIX so that all of CSM's coding
operations can be delegated to a single worker node without trusting it:

* a **worker** computes ``Y = A X`` and broadcasts the result;
* a small random committee of **auditors** (size ``J = log eps / log mu``)
  recomputes the product; an honest auditor that detects a wrong result
  interactively bisects the disputed row (Algorithm 1) until the worker is
  forced into an inconsistency of constant size;
* every other node (**commoners**) checks that final inconsistency in
  constant time and rejects the worker's output.

The protocol is information-theoretically sound — no computational
assumptions on the worker — at the price of ``O(log K)`` interaction rounds.

:mod:`repro.intermix.delegation` applies INTERMIX to CSM's three coding
operations (command encoding, state updating, result decoding) exactly as
Section 6.2 prescribes, which is what makes the per-node coding cost drop to
polylogarithmic and the throughput scale as ``Theta(N / log^2 N log log N)``.
"""

from repro.intermix.committee import CommitteeElection, Committee
from repro.intermix.worker import Worker, WorkerStrategy
from repro.intermix.auditor import Auditor, AuditTranscript
from repro.intermix.commoner import Commoner, CommonerVerdict
from repro.intermix.protocol import IntermixProtocol, VerificationOutcome
from repro.intermix.delegation import DelegatedCodingService, DelegatedRoundReport
from repro.intermix.rounds import DelegationRoundProtocol

__all__ = [
    "CommitteeElection",
    "Committee",
    "Worker",
    "WorkerStrategy",
    "Auditor",
    "AuditTranscript",
    "Commoner",
    "CommonerVerdict",
    "IntermixProtocol",
    "VerificationOutcome",
    "DelegatedCodingService",
    "DelegatedRoundReport",
    "DelegationRoundProtocol",
]
