"""Delegated-verification rounds behind the shared :class:`RoundProtocol` API.

:class:`DelegationRoundProtocol` runs the paper's Section 6.2 workload — all
coding operations of a CSM round performed by one elected worker and merely
*verified* by the network — as a round-driving backend the client-session
service (:mod:`repro.service`) can serve like any other.  One round is:

1. **encode** — the round's commands are encoded at the worker
   (``X~ = C X`` per command component) and INTERMIX-verified;
2. **execute** — every node applies the transition polynomial to its coded
   state/command row (one vectorised ``step_batch`` across all ``N`` rows);
3. **decode** — the coded next states and outputs are decoded at the worker
   through the cached fast-path decoder and verified via equations (9)/(8);
4. **update** — the decoded next states are re-encoded at the worker
   (INTERMIX-verified), refreshing the coded states for the next round.

A committee is elected once per batch and reused across its rounds.  With
``batched=True`` (the default) every INTERMIX verification inside a round
runs through :meth:`~repro.intermix.protocol.IntermixProtocol.run_batch` —
one stacked matrix product for the worker and all auditors per operation —
and the recorded history is bit-identical to ``batched=False``, which drives
the scalar :meth:`~repro.intermix.protocol.IntermixProtocol.run` oracle.

A round whose verification confirms fraud is recorded with
``correct=False`` and ``diagnostics["confirmed_fraud"]=True``: no output is
delivered, the coded states do not advance, and the service resolves the
round's tickets ``FAILED`` with
:attr:`~repro.service.tickets.FailureReason.DELEGATION_FRAUD`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.intermix.delegation import DelegatedCodingService, DelegatedRoundReport
from repro.intermix.committee import Committee
from repro.intermix.worker import WorkerStrategy
from repro.lcc.scheme import LagrangeScheme
from repro.machine.interface import StateMachine
from repro.replication.base import RoundResult
from repro.rng import default_stream
from repro.rounds import ProtocolRound, RoundProtocol


class DelegationRoundProtocol(RoundProtocol):
    """Executes service rounds whose coding work is delegated and verified.

    Parameters
    ----------
    machine:
        The template :class:`~repro.machine.interface.StateMachine` every
        hosted machine runs (its transition must be polynomial, as the coded
        execution evaluates it on coded rows).
    num_machines:
        ``K`` — how many logical machines the backend hosts.
    node_ids:
        The ``N`` network nodes committees are elected from.
    fault_fraction:
        ``mu`` — the assumed fraction of faulty nodes, which sizes the
        auditor committee ``J = ceil(log eps / log mu)``.
    rng:
        Deterministic stream for committee election and cheating workers.
    worker_strategies / corrupt_decoder_workers / dishonest_auditors:
        Adversary configuration, passed through to the delegation service.
    batched:
        ``True`` routes every INTERMIX verification through the stacked
        :meth:`~repro.intermix.protocol.IntermixProtocol.run_batch` path;
        ``False`` pins the scalar reference oracle.  Histories are
        bit-identical either way.
    """

    def __init__(
        self,
        machine: StateMachine,
        num_machines: int,
        node_ids: Sequence[str],
        fault_fraction: float = 0.2,
        rng: np.random.Generator | None = None,
        worker_strategies: dict[str, WorkerStrategy] | None = None,
        corrupt_decoder_workers: set[str] | None = None,
        dishonest_auditors: set[str] | None = None,
        failure_probability: float = 1e-6,
        batched: bool = True,
    ) -> None:
        if num_machines < 1:
            raise ConfigurationError(
                f"need at least one machine, got {num_machines}"
            )
        self.machine = machine
        self.node_ids = [str(node) for node in node_ids]
        self.rng = rng if rng is not None else default_stream()
        self.batched = bool(batched)
        self.scheme = LagrangeScheme(machine.field, num_machines, len(self.node_ids))
        self.delegation = DelegatedCodingService(
            self.scheme,
            machine.degree,
            self.node_ids,
            fault_fraction=fault_fraction,
            rng=self.rng,
            worker_strategies=worker_strategies,
            corrupt_decoder_workers=corrupt_decoder_workers,
            failure_probability=failure_probability,
            dishonest_auditors=dishonest_auditors,
        )
        initial_states = np.tile(
            machine.field.array(machine.initial_state).reshape(1, -1),
            (num_machines, 1),
        )
        # The genesis encoding is public setup, not delegated round work.
        self._coded_states = self.scheme.encode_vectors(initial_states)
        # Workers convicted of fraud are banned from the worker role in
        # later elections (the paper's banning of cheaters), so a retried
        # batch lands on a different worker instead of the same cheater.
        self.convicted_workers: set[str] = set()
        self.current_worker: str | None = None
        self._init_round_state()

    # -- RoundProtocol surface ---------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return self.scheme.num_machines

    def run_rounds_batched(
        self,
        command_batches: Sequence[np.ndarray],
        client_rounds: Sequence[Sequence[str]] | None = None,
    ) -> list[ProtocolRound]:
        rounds = [self._canonical_round(commands) for commands in command_batches]
        if client_rounds is not None and len(client_rounds) != len(rounds):
            raise ConfigurationError(
                f"got {len(client_rounds)} client rounds for {len(rounds)} "
                "command rounds"
            )
        # One election (a single rng permutation draw) serves the whole batch
        # — unless a round convicts its worker, which bans the cheater and
        # re-elects mid-batch so the batch's remaining rounds (and any later
        # retry) land on a different worker.  With no convictions the rng
        # stream is bit-identical to the single-election batch.
        committee = self.delegation.elect_committee(exclude=self.convicted_workers)
        self.current_worker = committee.worker
        records: list[ProtocolRound] = []
        for index, commands in enumerate(rounds):
            if client_rounds is None:
                clients = [f"client:{k}" for k in range(self.num_machines)]
            else:
                clients = [str(c) for c in client_rounds[index]]
            record = self._execute_round(commands, clients, committee)
            records.append(record)
            if record.result.diagnostics.get("confirmed_fraud"):
                self.convicted_workers.add(committee.worker)
                if len(self.convicted_workers) >= len(self.node_ids):
                    # Every node stands convicted: the ban list is moot, so
                    # reset it rather than electing from an empty pool.
                    self.convicted_workers.clear()
                if index + 1 < len(rounds):
                    committee = self.delegation.elect_committee(
                        exclude=self.convicted_workers
                    )
                    self.current_worker = committee.worker
        return records

    def resolve_fault_target(self, target: str, round_index: int) -> str:
        """Resolve ``"@worker"`` (the currently elected worker) or a literal id."""
        if target == "@worker":
            if self.current_worker is None:
                raise ConfigurationError(
                    "no committee elected yet; '@worker' resolves only after "
                    "the first batch"
                )
            return self.current_worker
        if target.startswith("@"):
            raise ConfigurationError(
                f"unknown adaptive fault target {target!r}; the delegation "
                "backend resolves only '@worker'"
            )
        if target not in self.node_ids:
            raise ConfigurationError(f"unknown fault target node {target!r}")
        return target

    # -- internals ---------------------------------------------------------------------
    def _canonical_round(self, commands: np.ndarray) -> np.ndarray:
        arr = self.machine.field.array(commands)
        if arr.ndim == 1:
            arr = arr.reshape(-1, self.machine.command_dim)
        if arr.shape != (self.num_machines, self.machine.command_dim):
            raise ConfigurationError(
                f"round commands have shape {arr.shape}, expected "
                f"({self.num_machines}, {self.machine.command_dim})"
            )
        return arr

    def _execute_round(
        self,
        commands: np.ndarray,
        clients: Sequence[str],
        committee: Committee,
    ) -> ProtocolRound:
        state_dim = self.machine.state_dim
        outputs = np.zeros((self.num_machines, self.machine.output_dim), dtype=np.int64)
        next_states = np.zeros((self.num_machines, state_dim), dtype=np.int64)
        coded_commands, report = self.delegation.encode_vectors_verified(
            commands, committee=committee, batched=self.batched
        )
        if report.accepted:
            next_coded, output_coded = self.machine.step_batch(
                self._coded_states, coded_commands
            )
            stacked = np.concatenate([next_coded, output_coded], axis=1)
            decoded, decode_report = self.delegation.decode_results_verified_fast(
                stacked, committee=committee, batched=self.batched
            )
            report.merge(decode_report)
            if report.accepted:
                next_states = decoded[:, :state_dim]
                outputs = decoded[:, state_dim:]
                new_coded_states, update_report = (
                    self.delegation.update_coded_states_verified(
                        next_states, committee=committee, batched=self.batched
                    )
                )
                report.merge(update_report)
                if report.accepted:
                    self._coded_states = new_coded_states
        if not report.accepted:
            # The round is void: withhold everything and keep the coded
            # states where they were so resubmission is safe.
            outputs = np.zeros_like(outputs)
            next_states = np.zeros_like(next_states)
        result = RoundResult(
            round_index=len(self.history),
            outputs=outputs,
            states=next_states,
            correct=report.accepted,
            ops_per_node=self._ops_per_node(report),
            diagnostics={
                "scheme": "delegated",
                "batched": self.batched,
                "worker": committee.worker,
                "confirmed_fraud": not report.accepted,
                "rejected_operations": sum(
                    1 for outcome in report.outcomes if outcome.confirmed_fraud
                ),
                "max_non_worker_operations": report.max_non_worker_operations,
            },
        )
        return self._record_round(commands, clients, result)

    def _ops_per_node(self, report: DelegatedRoundReport) -> dict[str, int]:
        ops = {node: 0 for node in self.node_ids}
        ops[report.worker_id] = ops.get(report.worker_id, 0) + report.worker_operations
        for node, count in report.auditor_operations.items():
            ops[node] = ops.get(node, 0) + count
        for node, count in report.commoner_operations.items():
            ops[node] = ops.get(node, 0) + count
        return ops
