"""Random committee / leader election for INTERMIX.

The paper's analysis: if at most a ``mu`` fraction of the nodes are dishonest
and ``J`` auditors are chosen uniformly at random, the probability that *no*
auditor is honest is at most ``mu**J``; choosing ``J = log(eps) / log(mu)``
makes that probability at most ``eps``.  The election itself can be done by
per-node coin tosses with probability ``J / N`` (with banning of nodes that
impose pointless audits), by an off-the-shelf distributed randomness beacon,
or hidden behind VRFs; for the simulation we use a seeded RNG which plays the
role of the shared randomness beacon, and we expose the committee-size
formula so the experiments can sweep ``eps``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.rng import default_stream


@dataclass
class Committee:
    """The outcome of one election."""

    worker: str
    auditors: list[str]
    commoners: list[str]

    @property
    def size(self) -> int:
        return len(self.auditors)

    def role_of(self, node_id: str) -> str:
        if node_id == self.worker:
            return "worker"
        if node_id in self.auditors:
            return "auditor"
        return "commoner"


def required_committee_size(fault_fraction: float, failure_probability: float) -> int:
    """``J = ceil(log eps / log mu)`` — smallest J with ``mu**J <= eps``.

    For ``mu = 0`` any single auditor suffices; ``mu >= 1`` is rejected
    because no committee size can help when every node may be dishonest.
    """
    if not 0 <= fault_fraction < 1:
        raise ConfigurationError(
            f"fault fraction must lie in [0, 1), got {fault_fraction}"
        )
    if not 0 < failure_probability < 1:
        raise ConfigurationError(
            f"failure probability must lie in (0, 1), got {failure_probability}"
        )
    if fault_fraction == 0:
        return 1
    j = math.ceil(math.log(failure_probability) / math.log(fault_fraction))
    return max(int(j), 1)


class CommitteeElection:
    """Elects a worker and a committee of auditors from the node set."""

    def __init__(
        self,
        node_ids: list[str],
        fault_fraction: float,
        failure_probability: float = 1e-6,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not node_ids:
            raise ConfigurationError("election needs at least one node")
        self.node_ids = list(node_ids)
        self.fault_fraction = float(fault_fraction)
        self.failure_probability = float(failure_probability)
        self.rng = rng if rng is not None else default_stream()

    @property
    def committee_size(self) -> int:
        """Number of auditors J (capped at N - 1 so a worker remains)."""
        j = required_committee_size(self.fault_fraction, self.failure_probability)
        return min(j, max(len(self.node_ids) - 1, 1))

    def soundness_failure_probability(self) -> float:
        """Probability that every elected auditor is dishonest: ``mu**J``."""
        return float(self.fault_fraction**self.committee_size)

    def elect(self, exclude: set[str] | frozenset[str] = frozenset()) -> Committee:
        """Sample a worker and J distinct auditors uniformly at random.

        The worker and the auditors are disjoint (an auditor auditing itself
        would be pointless); the remaining nodes are commoners.

        ``exclude`` names nodes barred from the *worker* role — the paper's
        banning of convicted workers.  The election still draws exactly one
        permutation: the worker is the first non-excluded node in it, the
        auditors the next J nodes after removing the worker, so with
        ``exclude`` empty the outcome (and the rng stream) is bit-identical
        to the unbanned election.  If every node is excluded the ban list
        is moot and the plain election applies.
        """
        order = [str(n) for n in self.rng.permutation(self.node_ids)]
        eligible = [n for n in order if n not in exclude]
        if not eligible:
            eligible = order
        worker = eligible[0]
        rest = [n for n in order if n != worker]
        auditors = rest[: self.committee_size]
        commoners = rest[self.committee_size :]
        return Committee(worker=worker, auditors=auditors, commoners=commoners)

    def elect_by_self_election(self) -> Committee:
        """The local coin-toss variant: each node self-elects with prob J/N.

        If nobody self-elects the committee falls back to one random auditor,
        mirroring the "occasional re-run of the randomness beacon" discussion
        in the paper.
        """
        order = list(self.rng.permutation(self.node_ids))
        worker = str(order[0])
        rate = self.committee_size / max(len(self.node_ids), 1)
        auditors = [
            str(node_id)
            for node_id in order[1:]
            if float(self.rng.random()) < rate
        ]
        if not auditors:
            auditors = [str(order[1])] if len(order) > 1 else []
        commoners = [str(n) for n in order[1:] if n not in auditors]
        return Committee(worker=worker, auditors=auditors, commoners=commoners)
