"""Delegated (centralised) coding for CSM, verified with INTERMIX (Section 6.2).

Instead of every node encoding commands / updating its coded state / decoding
results on its own (``Theta(NK)`` aggregate work), all three coding
operations are performed once by a single worker and merely *verified* by the
rest of the network:

* **Encoding of input commands** — the worker computes ``X~ = C X`` (per
  command component); INTERMIX verifies the product against the public
  coefficient matrix ``C``.
* **Updating coded states** — identical, with the decoded next states in
  place of the commands.
* **Decoding of results** — the worker runs Reed–Solomon decoding to obtain
  the coefficients ``b_0..b_K'`` of the composite polynomial and an agreement
  set ``tau`` of size at least ``(N + K' + 1) / 2``; equation (9)
  (``g_tau = V_tau b``) and equation (8) (``outputs = V_omega b``) are both
  matrix–vector products that INTERMIX verifies.  Auditors additionally check
  the claimed evaluations against the results every node already received;
  any single mismatching position is a constant-time accusation.

The :class:`DelegatedRoundReport` records how much work each role performed,
which is the quantity behind the paper's throughput theorem: the worker and
the auditors pay ``O(N log^2 N log log N)`` while every other node pays
``O(1)`` per coding operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DecodingError, VerificationError
from repro.gf.field import Field, OperationCounter
from repro.gf.vandermonde import vandermonde_matrix
from repro.lcc.decoder import CodedResultDecoder
from repro.lcc.scheme import LagrangeScheme
from repro.intermix.committee import Committee, CommitteeElection
from repro.intermix.protocol import IntermixProtocol, VerificationOutcome
from repro.intermix.worker import WorkerStrategy
from repro.rng import default_stream


@dataclass
class DelegatedRoundReport:
    """Complexity and audit outcome of one delegated coding operation."""

    operation: str
    accepted: bool
    worker_id: str
    worker_operations: int = 0
    auditor_operations: dict[str, int] = field(default_factory=dict)
    commoner_operations: dict[str, int] = field(default_factory=dict)
    outcomes: list[VerificationOutcome] = field(default_factory=list)

    @property
    def max_non_worker_operations(self) -> int:
        """Worst per-node cost outside the worker — the quantity that must stay flat."""
        costs = list(self.auditor_operations.values()) + list(
            self.commoner_operations.values()
        )
        return max(costs) if costs else 0

    @property
    def max_commoner_operations(self) -> int:
        return max(self.commoner_operations.values()) if self.commoner_operations else 0

    def merge(self, other: "DelegatedRoundReport") -> None:
        self.accepted = self.accepted and other.accepted
        self.worker_operations += other.worker_operations
        for key, value in other.auditor_operations.items():
            self.auditor_operations[key] = self.auditor_operations.get(key, 0) + value
        for key, value in other.commoner_operations.items():
            self.commoner_operations[key] = self.commoner_operations.get(key, 0) + value
        self.outcomes.extend(other.outcomes)


class DelegatedCodingService:
    """Performs CSM's coding operations at a single verified worker."""

    def __init__(
        self,
        scheme: LagrangeScheme,
        transition_degree: int,
        node_ids: list[str],
        fault_fraction: float,
        rng: np.random.Generator | None = None,
        worker_strategies: dict[str, WorkerStrategy] | None = None,
        corrupt_decoder_workers: set[str] | None = None,
        failure_probability: float = 1e-6,
        dishonest_auditors: set[str] | None = None,
    ) -> None:
        self.scheme = scheme
        self.field: Field = scheme.field
        self.transition_degree = int(transition_degree)
        self.node_ids = list(node_ids)
        self.rng = rng if rng is not None else default_stream()
        self.intermix = IntermixProtocol(
            self.field,
            self.node_ids,
            fault_fraction=fault_fraction,
            failure_probability=failure_probability,
            rng=self.rng,
            worker_strategies=worker_strategies,
            dishonest_auditors=dishonest_auditors,
        )
        self.corrupt_decoder_workers = set(corrupt_decoder_workers or set())
        self._decoder = CodedResultDecoder(scheme, transition_degree)
        self._omega_matrix_cache: dict[int, np.ndarray] = {}

    # -- committee handling ---------------------------------------------------------------
    def elect_committee(
        self, exclude: set[str] | frozenset[str] = frozenset()
    ) -> Committee:
        return self.intermix.election.elect(exclude=exclude)

    # -- operation 1/2: encoding commands and updating states ------------------------------
    def encode_vectors_verified(
        self,
        values: np.ndarray,
        committee: Committee | None = None,
        operation: str = "encode-commands",
        batched: bool = False,
    ) -> tuple[np.ndarray, DelegatedRoundReport]:
        """Compute ``C @ values`` at the worker, one INTERMIX run per component.

        With ``batched=True`` the per-component runs collapse into one
        :meth:`~repro.intermix.protocol.IntermixProtocol.run_batch` (a single
        stacked matrix product for the worker and every auditor); the report
        is bit-identical to the scalar loop.
        """
        committee = committee or self.elect_committee()
        arr = self.field.array(values)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        matrix = self.scheme.coefficient_matrix
        coded = np.zeros((self.scheme.num_nodes, arr.shape[1]), dtype=np.int64)
        report = DelegatedRoundReport(
            operation=operation, accepted=True, worker_id=committee.worker
        )
        for component, outcome in enumerate(
            self._run_components(matrix, arr, committee, batched)
        ):
            self._merge_outcome(report, outcome)
            if not outcome.accepted or outcome.result is None:
                report.accepted = False
                continue
            coded[:, component] = outcome.result
        return coded, report

    def update_coded_states_verified(
        self,
        decoded_next_states: np.ndarray,
        committee: Committee | None = None,
        batched: bool = False,
    ) -> tuple[np.ndarray, DelegatedRoundReport]:
        """The state-update path: same verified product with the new states."""
        return self.encode_vectors_verified(
            decoded_next_states,
            committee=committee,
            operation="update-states",
            batched=batched,
        )

    # -- operation 3: decoding results ----------------------------------------------------------
    def decode_results_verified(
        self,
        coded_results: np.ndarray,
        committee: Committee | None = None,
    ) -> tuple[np.ndarray, DelegatedRoundReport]:
        """Decode the round's coded results at the worker and verify eqs. (8)/(9).

        Returns the ``(K, result_dim)`` decoded outputs and the audit report.
        Raises :class:`DecodingError` if even an honest decode is impossible
        (too many errors); a *dishonest* worker is detected and reported as
        ``accepted=False`` instead.
        """
        committee = committee or self.elect_committee()
        results = self.field.array(coded_results)
        if results.ndim == 1:
            results = results.reshape(-1, 1)
        report = DelegatedRoundReport(
            operation="decode-results", accepted=True, worker_id=committee.worker
        )
        composite_degree = self.scheme.composite_degree(self.transition_degree)
        num_coefficients = composite_degree + 1
        agreement_threshold = (self.scheme.num_nodes + composite_degree + 1 + 1) // 2
        outputs = np.zeros(
            (self.scheme.num_machines, results.shape[1]), dtype=np.int64
        )
        worker_counter = OperationCounter()
        worker_is_corrupt = committee.worker in self.corrupt_decoder_workers
        for component in range(results.shape[1]):
            # Worker-side decode (operation-counted).
            self.field.attach_counter(worker_counter)
            try:
                decoded = self._decode_component(results[:, component])
            finally:
                self.field.attach_counter(None)
            coefficients = decoded.polynomial.coefficient_array(num_coefficients)
            if worker_is_corrupt:
                coefficients = coefficients.copy()
                coefficients[0] = self.field.add(int(coefficients[0]), 1)
            agreement_set = [
                i for i in range(self.scheme.num_nodes)
                if i not in decoded.error_positions
            ]
            if len(agreement_set) < agreement_threshold:
                raise DecodingError(
                    f"agreement set of size {len(agreement_set)} below the "
                    f"threshold {agreement_threshold}"
                )
            # Equation (9): the received results on tau match V_tau @ b.
            tau_points = [self.scheme.alphas[i] for i in agreement_set]
            tau_matrix = vandermonde_matrix(self.field, tau_points, num_coefficients)
            outcome9 = self.intermix.run(tau_matrix, coefficients, committee=committee)
            self._merge_outcome(report, outcome9)
            if outcome9.accepted and outcome9.result is not None:
                received_tau = results[agreement_set, component]
                if not np.array_equal(
                    self.field.array(outcome9.result), self.field.array(received_tau)
                ):
                    # Every auditor holds the broadcast results, so a mismatch
                    # against the claimed evaluations is a public, O(1)-checkable
                    # accusation per position.
                    report.accepted = False
            else:
                report.accepted = False
            # Equation (8): evaluate the decoded polynomial at the omegas.
            omega_matrix = self._omega_matrix(num_coefficients)
            outcome8 = self.intermix.run(omega_matrix, coefficients, committee=committee)
            self._merge_outcome(report, outcome8)
            if outcome8.accepted and outcome8.result is not None:
                outputs[:, component] = outcome8.result
            else:
                report.accepted = False
        report.worker_operations += worker_counter.total
        if not report.accepted:
            raise VerificationError(
                f"delegated decoding by worker '{committee.worker}' failed verification"
            )
        return outputs, report

    def decode_results_verified_fast(
        self,
        coded_results: np.ndarray,
        committee: Committee | None = None,
        batched: bool = True,
    ) -> tuple[np.ndarray, DelegatedRoundReport]:
        """Decode one round's coded results through the cached fast-path decoder.

        The modern counterpart of :meth:`decode_results_verified`: the worker
        decodes via :meth:`~repro.lcc.decoder.CodedResultDecoder.decode_fast`
        (cached-matrix interpolation + re-encode verification instead of one
        Berlekamp–Welch system per component), the agreement set is the
        complement of the decoder's confirmed error nodes, and the eq. (9) /
        eq. (8) verifications run once across *all* components —
        as one :meth:`~repro.intermix.protocol.IntermixProtocol.run_batch`
        each when ``batched``, or as the bit-identical scalar loop otherwise.

        Unlike :meth:`decode_results_verified` this never raises on a
        cheating worker: ``report.accepted`` carries the verdict, so round
        drivers can record the failed round (and its operation counts)
        instead of unwinding.  :class:`~repro.exceptions.DecodingError` is
        still raised when even an honest decode is impossible.
        """
        committee = committee or self.elect_committee()
        results = self.field.array(coded_results)
        if results.ndim == 1:
            results = results.reshape(-1, 1)
        report = DelegatedRoundReport(
            operation="decode-results", accepted=True, worker_id=committee.worker
        )
        composite_degree = self.scheme.composite_degree(self.transition_degree)
        num_coefficients = composite_degree + 1
        agreement_threshold = (self.scheme.num_nodes + composite_degree + 1 + 1) // 2
        worker_counter = OperationCounter()
        self.field.attach_counter(worker_counter)
        try:
            decoded = self._decoder.decode_fast(results)
        finally:
            self.field.attach_counter(None)
        coefficients = np.zeros((num_coefficients, results.shape[1]), dtype=np.int64)
        for component, polynomial in enumerate(decoded.polynomials):
            coefficients[:, component] = polynomial.coefficient_array(num_coefficients)
        if committee.worker in self.corrupt_decoder_workers:
            coefficients[0, :] = self.field.add(coefficients[0, :], 1)
        agreement_set = [
            i for i in range(self.scheme.num_nodes) if i not in decoded.error_nodes
        ]
        if len(agreement_set) < agreement_threshold:
            raise DecodingError(
                f"agreement set of size {len(agreement_set)} below the "
                f"threshold {agreement_threshold}"
            )
        # Equation (9): the received results on tau match V_tau @ b — every
        # component against the one shared agreement set.
        tau_points = [self.scheme.alphas[i] for i in agreement_set]
        tau_matrix = vandermonde_matrix(self.field, tau_points, num_coefficients)
        outputs = np.zeros(
            (self.scheme.num_machines, results.shape[1]), dtype=np.int64
        )
        for component, outcome9 in enumerate(
            self._run_components(tau_matrix, coefficients, committee, batched)
        ):
            self._merge_outcome(report, outcome9)
            if outcome9.accepted and outcome9.result is not None:
                received_tau = results[agreement_set, component]
                if not np.array_equal(
                    self.field.array(outcome9.result), self.field.array(received_tau)
                ):
                    report.accepted = False
            else:
                report.accepted = False
        # Equation (8): evaluate the decoded polynomials at the omegas.
        omega_matrix = self._omega_matrix(num_coefficients)
        for component, outcome8 in enumerate(
            self._run_components(omega_matrix, coefficients, committee, batched)
        ):
            self._merge_outcome(report, outcome8)
            if outcome8.accepted and outcome8.result is not None:
                outputs[:, component] = outcome8.result
            else:
                report.accepted = False
        report.worker_operations += worker_counter.total
        return outputs, report

    # -- internals ----------------------------------------------------------------------------------
    def _run_components(
        self,
        matrix: np.ndarray,
        columns: np.ndarray,
        committee: Committee,
        batched: bool,
    ) -> list[VerificationOutcome]:
        """Verify ``matrix @ columns[:, c]`` for every component column."""
        if batched:
            return self.intermix.run_batch(matrix, columns, committee=committee)
        return [
            self.intermix.run(matrix, columns[:, c], committee=committee)
            for c in range(columns.shape[1])
        ]

    def _decode_component(self, column: np.ndarray):
        from repro.coding.berlekamp_welch import BerlekampWelchDecoder

        return BerlekampWelchDecoder(self._decoder.code).decode(column)

    def _omega_matrix(self, num_coefficients: int) -> np.ndarray:
        if num_coefficients not in self._omega_matrix_cache:
            self._omega_matrix_cache[num_coefficients] = vandermonde_matrix(
                self.field, self.scheme.omegas, num_coefficients
            )
        return self._omega_matrix_cache[num_coefficients]

    @staticmethod
    def _merge_outcome(report: DelegatedRoundReport, outcome: VerificationOutcome) -> None:
        report.outcomes.append(outcome)
        report.worker_operations += outcome.worker_operations
        for node, ops in outcome.auditor_operations.items():
            report.auditor_operations[node] = report.auditor_operations.get(node, 0) + ops
        for node, ops in outcome.commoner_operations.items():
            report.commoner_operations[node] = report.commoner_operations.get(node, 0) + ops
