"""Orchestration of one INTERMIX verification round.

The protocol ties the roles together for a single delegated product
``Y = A X``:

1. elect a worker and ``J`` auditors (the caller may also fix the roles, as
   CSM's delegation layer does when it re-uses a committee across rounds);
2. the worker broadcasts its claimed ``Y^``;
3. every auditor runs Algorithm 1; auditors that accept broadcast an
   acknowledgement, the others broadcast their accusation transcripts;
4. the commoners validate each accusation in constant time (the interaction
   between the worker and the auditors is public, so the worker's claims the
   commoners check against are re-read from the worker itself);
5. the outcome is *accepted* iff no validated accusation exists **and** the
   worker actually broadcast a result.

The outcome also carries the complexity accounting used to reproduce the
worst-case overhead formula of Section 6.1:
``(J + 1) c(AX) + 8 J K + 3 J log K + N - J - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import VerificationError
from repro.gf.field import Field, OperationCounter
from repro.intermix.auditor import Auditor, AuditTranscript
from repro.intermix.commoner import Commoner, CommonerVerdict
from repro.intermix.committee import Committee, CommitteeElection
from repro.intermix.worker import Worker, WorkerStrategy
from repro.rng import default_stream


@dataclass
class VerificationOutcome:
    """Result of one verified matrix–vector multiplication."""

    accepted: bool
    result: np.ndarray | None
    committee: Committee
    transcripts: list[AuditTranscript] = field(default_factory=list)
    verdicts: list[CommonerVerdict] = field(default_factory=list)
    worker_operations: int = 0
    auditor_operations: dict[str, int] = field(default_factory=dict)
    commoner_operations: dict[str, int] = field(default_factory=dict)
    confirmed_fraud: bool = False

    @property
    def fraud_detected(self) -> bool:
        return self.confirmed_fraud or any(v.fraud_confirmed for v in self.verdicts)

    @property
    def total_operations(self) -> int:
        return (
            self.worker_operations
            + sum(self.auditor_operations.values())
            + sum(self.commoner_operations.values())
        )

    def operations_for(self, node_id: str) -> int:
        if node_id == self.committee.worker:
            return self.worker_operations
        if node_id in self.auditor_operations:
            return self.auditor_operations[node_id]
        return self.commoner_operations.get(node_id, 0)


class IntermixProtocol:
    """Runs verified matrix-vector multiplications over a fixed node set."""

    def __init__(
        self,
        field: Field,
        node_ids: list[str],
        fault_fraction: float,
        failure_probability: float = 1e-6,
        rng: np.random.Generator | None = None,
        worker_strategies: dict[str, WorkerStrategy] | None = None,
        dishonest_auditors: set[str] | None = None,
    ) -> None:
        self.field = field
        self.node_ids = list(node_ids)
        self.rng = rng if rng is not None else default_stream()
        self.election = CommitteeElection(
            node_ids, fault_fraction, failure_probability, rng=self.rng
        )
        self.worker_strategies = dict(worker_strategies or {})
        self.dishonest_auditors = set(dishonest_auditors or set())

    # -- main entry point -----------------------------------------------------------------
    def run(
        self,
        matrix: np.ndarray,
        vector: np.ndarray,
        committee: Committee | None = None,
    ) -> VerificationOutcome:
        """Delegate ``A X`` to a worker and verify the result."""
        committee = committee or self.election.elect()
        strategy = self.worker_strategies.get(committee.worker, WorkerStrategy.HONEST)
        worker = Worker(committee.worker, self.field, strategy=strategy, rng=self.rng)
        claimed = worker.compute(matrix, vector)
        return self._judge(matrix, vector, committee, worker, claimed)

    def run_batch(
        self,
        matrix: np.ndarray,
        vectors: np.ndarray,
        committee: Committee | None = None,
    ) -> list[VerificationOutcome]:
        """Verify many delegated products ``A @ vectors[:, r]`` in one batch.

        One committee serves every column (elected here when not supplied),
        and the worker's — and all auditors' — recomputations collapse into a
        single stacked :meth:`~repro.gf.field.Field.matmul` whose operation
        count is split evenly across the columns (exact, because the matmul
        cost is shape-based and identical per column to
        :func:`~repro.gf.linalg.gf_matvec`).  The returned outcomes are
        bit-identical — verdicts, transcripts, per-role operation counts and
        rng stream — to ``[run(matrix, vectors[:, r], committee=c) for r in
        range(R)]`` with the same committee ``c``; the scalar :meth:`run`
        stays the reference oracle.
        """
        committee = committee or self.election.elect()
        matrix_arr = self.field.array(matrix)
        vectors_arr = self.field.array(vectors)
        if vectors_arr.ndim == 1:
            vectors_arr = vectors_arr.reshape(-1, 1)
        num_rounds = vectors_arr.shape[1]
        if num_rounds == 0:
            return []
        strategy = self.worker_strategies.get(committee.worker, WorkerStrategy.HONEST)
        if strategy is WorkerStrategy.SILENT:
            # A silent worker never computes (and the scalar path charges
            # nothing for it), so there is no product to batch.
            true_products = None
            per_muls = per_adds = 0
        else:
            batch_counter = OperationCounter()
            self.field.attach_counter(batch_counter)
            try:
                true_products = self.field.matmul(matrix_arr, vectors_arr)
            finally:
                self.field.attach_counter(None)
            per_muls = batch_counter.multiplications // num_rounds
            per_adds = batch_counter.additions // num_rounds
        outcomes: list[VerificationOutcome] = []
        for index in range(num_rounds):
            column = np.ascontiguousarray(vectors_arr[:, index])
            worker = Worker(
                committee.worker, self.field, strategy=strategy, rng=self.rng
            )
            if true_products is None:
                claimed = worker.compute(matrix_arr, column)
                truth = None
                mismatches = None
            else:
                truth = np.ascontiguousarray(true_products[:, index])
                claimed = worker.adopt_computation(
                    matrix_arr, column, truth, per_muls, per_adds
                )
                # One stacked comparison serves every auditor of this round.
                mismatches = np.nonzero(truth != claimed)[0]
            outcomes.append(
                self._judge(
                    matrix_arr,
                    column,
                    committee,
                    worker,
                    claimed,
                    true_product=truth,
                    per_muls=per_muls,
                    per_adds=per_adds,
                    mismatches=mismatches,
                )
            )
        return outcomes

    def _judge(
        self,
        matrix: np.ndarray,
        vector: np.ndarray,
        committee: Committee,
        worker: Worker,
        claimed: np.ndarray | None,
        true_product: np.ndarray | None = None,
        per_muls: int = 0,
        per_adds: int = 0,
        mismatches: np.ndarray | None = None,
    ) -> VerificationOutcome:
        """Audit, publish, and validate one delegated product's broadcast."""
        transcripts: list[AuditTranscript] = []
        auditor_ops: dict[str, int] = {}
        for auditor_id in committee.auditors:
            auditor = Auditor(
                auditor_id, self.field, dishonest=auditor_id in self.dishonest_auditors
            )
            if true_product is None:
                transcripts.append(auditor.audit(matrix, vector, claimed, worker))
            else:
                transcripts.append(
                    auditor.audit_precomputed(
                        matrix,
                        vector,
                        claimed,
                        worker,
                        true_product,
                        per_muls,
                        per_adds,
                        mismatches=mismatches,
                    )
                )
            auditor_ops[auditor_id] = auditor.operations

        # Publish the worker's claims the accusations refer to (the commoners
        # "overhear the entire conversation" in the paper's model).
        public_transcripts = [
            transcript
            if transcript.accepted
            else self._with_overheard_claims(transcript, worker, claimed)
            for transcript in transcripts
        ]
        verdicts: list[CommonerVerdict] = []
        commoner_ops: dict[str, int] = {}
        for commoner_id in committee.commoners:
            commoner = Commoner(commoner_id, self.field)
            for transcript in public_transcripts:
                if transcript.accepted:
                    continue
                verdicts.append(
                    commoner.verify_transcript(transcript, matrix, vector, claimed)
                )
            commoner_ops[commoner_id] = commoner.operations

        # The accept/reject decision is taken by every node for itself; the
        # auditors validated the same public accusations (at no extra cost —
        # they already hold the data), so a committee with no commoners still
        # rejects a convicted worker.
        validator = Commoner("__validator__", self.field)
        fraud_confirmed = any(
            validator.verify_transcript(t, matrix, vector, claimed).fraud_confirmed
            for t in public_transcripts
            if not t.accepted
        )
        no_result = claimed is None
        accepted = not fraud_confirmed and not no_result
        return VerificationOutcome(
            accepted=accepted,
            result=None if claimed is None else claimed.copy(),
            committee=committee,
            transcripts=transcripts,
            verdicts=verdicts,
            worker_operations=worker.operations,
            auditor_operations=auditor_ops,
            commoner_operations=commoner_ops,
            confirmed_fraud=fraud_confirmed or no_result,
        )

    def run_or_raise(
        self,
        matrix: np.ndarray,
        vector: np.ndarray,
        committee: Committee | None = None,
    ) -> np.ndarray:
        """Like :meth:`run` but raises :class:`VerificationError` on rejection."""
        outcome = self.run(matrix, vector, committee=committee)
        if not outcome.accepted or outcome.result is None:
            raise VerificationError(
                f"INTERMIX rejected the worker '{outcome.committee.worker}' "
                f"({len([v for v in outcome.verdicts if v.fraud_confirmed])} confirmed accusations)"
            )
        return outcome.result

    # -- internals --------------------------------------------------------------------------
    def _with_overheard_claims(
        self, transcript: AuditTranscript, worker: Worker, claimed: np.ndarray | None
    ) -> AuditTranscript:
        """Replace the auditor-reported claims by the worker's own (overheard) answers.

        The commoners hear the worker's answers directly on the broadcast
        channel, so a dishonest auditor cannot attribute fabricated claims to
        an honest worker.  For a leaf mismatch we re-read the worker's claim
        for the single disputed entry; for a sum mismatch we re-read the two
        half claims.
        """
        if transcript.accepted or claimed is None:
            return transcript
        if transcript.failure_kind not in ("leaf-mismatch", "sum-mismatch"):
            return transcript
        start, stop = transcript.leaf_range
        row = transcript.row_index
        vector_length = worker.vector_length if worker.vector_length is not None else stop

        def worker_claim_for(range_start: int, range_stop: int) -> int | None:
            """The worker's public claim for a sub-range of the disputed row."""
            if (range_start, range_stop) == (0, vector_length):
                return int(claimed[row])
            return worker.answer_query(row, range_start, range_stop)

        if transcript.failure_kind == "leaf-mismatch":
            if stop - start != 1:
                return transcript
            overheard = worker_claim_for(start, stop)
            if overheard is None:
                failure_kind, parent, halves = "no-response", 0, (0, 0)
            else:
                failure_kind, parent, halves = "leaf-mismatch", int(overheard), (0, 0)
        else:  # sum-mismatch
            midpoint = start + (stop - start) // 2
            parent_claim = worker_claim_for(start, stop)
            left = worker.answer_query(row, start, midpoint)
            right = worker.answer_query(row, midpoint, stop)
            if parent_claim is None or left is None or right is None:
                failure_kind, parent, halves = "no-response", 0, (0, 0)
            else:
                failure_kind = "sum-mismatch"
                parent = int(parent_claim)
                halves = (int(left), int(right))
        return AuditTranscript(
            auditor_id=transcript.auditor_id,
            accepted=False,
            row_index=row,
            path=transcript.path,
            failure_kind=failure_kind,
            parent_claim=parent,
            half_claims=halves,
            leaf_range=transcript.leaf_range,
            queries_issued=transcript.queries_issued,
        )
