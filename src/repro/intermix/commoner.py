"""The INTERMIX commoners: constant-time verification of audit outcomes.

A commoner never recomputes the matrix-vector product.  It only ever checks:

* a **sum mismatch** — one field addition and one comparison against the
  worker's published claims (``Y^(j,1) + Y^(j,2) != Y^(j)``);
* a **leaf mismatch** — one scalar multiplication ``A^(j) X^(j)`` and a
  comparison (the disputed segment has length 1);
* a **missing response** — the worker failed to broadcast or to answer,
  which under the broadcast/synchronous assumption is directly observable.

If every auditor acknowledged the result, the commoner accepts it outright.
This is exactly why the per-commoner verification cost is ``O(1)`` and the
network-wide overhead of INTERMIX stays additive (Section 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gf.field import Field, OperationCounter
from repro.intermix.auditor import AuditTranscript


@dataclass
class CommonerVerdict:
    """One commoner's conclusion about one audit transcript."""

    commoner_id: str
    transcript_author: str
    fraud_confirmed: bool
    operations: int


class Commoner:
    """A node that only performs constant-time checks."""

    def __init__(self, node_id: str, field: Field) -> None:
        self.node_id = str(node_id)
        self.field = field
        self.counter = OperationCounter()

    def verify_transcript(
        self,
        transcript: AuditTranscript,
        matrix: np.ndarray,
        vector: np.ndarray,
        claimed: np.ndarray | None,
    ) -> CommonerVerdict:
        """Check an auditor's accusation in constant time.

        ``matrix`` and ``vector`` are passed so the commoner can read the
        *single* disputed entry for a leaf mismatch; it never touches more
        than one row element and one vector element.
        """
        before = self.counter.total
        fraud = False
        if transcript.accepted:
            fraud = False
        elif transcript.failure_kind == "no-response" or claimed is None:
            # Missing broadcast/answers are directly observable misbehaviour.
            fraud = True
        elif transcript.failure_kind == "sum-mismatch":
            self.field.attach_counter(self.counter)
            try:
                total = self.field.add(*transcript.half_claims)
            finally:
                self.field.attach_counter(None)
            fraud = int(total) != int(transcript.parent_claim)
        elif transcript.failure_kind == "leaf-mismatch":
            start, stop = transcript.leaf_range
            if stop - start != 1:
                fraud = False  # malformed accusation; dismiss it
            else:
                matrix_arr = self.field.array(matrix)
                vector_arr = self.field.array(vector).reshape(-1)
                self.field.attach_counter(self.counter)
                try:
                    product = self.field.mul(
                        int(matrix_arr[transcript.row_index, start]),
                        int(vector_arr[start]),
                    )
                finally:
                    self.field.attach_counter(None)
                fraud = int(product) != int(transcript.parent_claim)
        return CommonerVerdict(
            commoner_id=self.node_id,
            transcript_author=transcript.auditor_id,
            fraud_confirmed=fraud,
            operations=self.counter.total - before,
        )

    @property
    def operations(self) -> int:
        return self.counter.total
