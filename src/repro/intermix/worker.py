"""The INTERMIX worker.

The worker is the single node to which the coding operations are delegated.
It is asked to broadcast ``Y^ = A X`` and subsequently to answer the
auditors' sub-product queries ``Y^(j, l) = A^(j, l) X^(j, l)``.  Since the
soundness analysis must hold against an *arbitrary* (computationally
unbounded) adversary, the simulation provides several cheating strategies:

* ``HONEST`` — computes everything correctly.
* ``CORRUPT_RESULT`` — broadcasts a wrong ``Y^`` but answers sub-queries
  truthfully; the very first bisection step exposes
  ``Z^1 + Z^2 != Y^_i``.
* ``CONSISTENT_LIAR`` — broadcasts a wrong ``Y^`` and fabricates sub-answers
  that always sum to its previous lie (the strongest strategy: the
  inconsistency is only exposed at the last, constant-size check
  ``Y^(j) != A^(j) X^(j)``).
* ``SILENT`` — refuses to answer queries; under the broadcast/synchronous
  assumption the commoners treat the missing answer as an admission of
  fraud.

Every query the worker answers is counted so the complexity accounting of
Section 6.1 (worst case ``8JK`` extra inner-product work) can be reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gf.field import Field, OperationCounter
from repro.gf.linalg import gf_matvec
from repro.rng import default_stream


class WorkerStrategy(str, Enum):
    HONEST = "honest"
    CORRUPT_RESULT = "corrupt-result"
    CONSISTENT_LIAR = "consistent-liar"
    SILENT = "silent"


@dataclass
class QueryRecord:
    """One sub-product query answered by the worker (for complexity audits)."""

    row_index: int
    start: int
    stop: int
    answer: int
    truthful: bool


class Worker:
    """The delegated computation node."""

    def __init__(
        self,
        node_id: str,
        field: Field,
        strategy: WorkerStrategy = WorkerStrategy.HONEST,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.node_id = str(node_id)
        self.field = field
        self.strategy = WorkerStrategy(strategy)
        self.rng = rng if rng is not None else default_stream()
        self.counter = OperationCounter()
        self.query_log: list[QueryRecord] = []
        self._matrix: np.ndarray | None = None
        self._vector: np.ndarray | None = None
        self._claimed: np.ndarray | None = None
        # For the consistent liar: remembered claims per (row, start, stop).
        self._claims: dict[tuple[int, int, int], int] = {}

    # -- main computation ------------------------------------------------------------
    def compute(self, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray | None:
        """Compute (or mis-compute) ``Y^ = A X`` and remember the inputs.

        Returns ``None`` for the silent strategy (no broadcast at all).
        """
        self._matrix = self.field.array(matrix)
        self._vector = self.field.array(vector).reshape(-1)
        if self._matrix.ndim != 2 or self._matrix.shape[1] != self._vector.shape[0]:
            raise ConfigurationError(
                f"matrix {self._matrix.shape} and vector {self._vector.shape} mismatch"
            )
        if self.strategy is WorkerStrategy.SILENT:
            self._claimed = None
            return None
        self.field.attach_counter(self.counter)
        try:
            true_product = gf_matvec(self.field, self._matrix, self._vector)
        finally:
            self.field.attach_counter(None)
        return self._finish_compute(true_product)

    def adopt_computation(
        self,
        matrix: np.ndarray,
        vector: np.ndarray,
        true_product: np.ndarray,
        multiplications: int,
        additions: int,
    ) -> np.ndarray | None:
        """Batched-path entry: adopt a precomputed ``A X`` with its cost.

        The stacked batch path computes the products of many delegated rounds
        in one matrix product; this hands the worker its round's column plus
        the per-round share of the batch's operation counts, after which the
        strategy branches (honest broadcast, corruption, claim caching) run
        exactly as in :meth:`compute`.
        """
        self._matrix = self.field.array(matrix)
        self._vector = self.field.array(vector).reshape(-1)
        if self._matrix.ndim != 2 or self._matrix.shape[1] != self._vector.shape[0]:
            raise ConfigurationError(
                f"matrix {self._matrix.shape} and vector {self._vector.shape} mismatch"
            )
        if self.strategy is WorkerStrategy.SILENT:
            self._claimed = None
            return None
        self.counter.mul(multiplications)
        self.counter.add(additions)
        return self._finish_compute(self.field.array(true_product).reshape(-1))

    def _finish_compute(self, true_product: np.ndarray) -> np.ndarray:
        """Apply the (possibly cheating) broadcast strategy to the true product."""
        if self.strategy is WorkerStrategy.HONEST:
            self._claimed = true_product
            return true_product.copy()
        # Cheating strategies corrupt at least one output row.
        corrupted = true_product.copy()
        victim = int(self.rng.integers(0, corrupted.shape[0]))
        corrupted[victim] = self.field.add(int(corrupted[victim]), 1)
        self._claimed = corrupted
        self._claims.clear()
        for row in range(corrupted.shape[0]):
            self._claims[(row, 0, self._vector.shape[0])] = int(corrupted[row])
        return corrupted.copy()

    @property
    def claimed_result(self) -> np.ndarray | None:
        return None if self._claimed is None else self._claimed.copy()

    @property
    def vector_length(self) -> int | None:
        """Length of the delegated vector ``X``, or ``None`` before any compute."""
        return None if self._vector is None else int(self._vector.shape[0])

    # -- query answering ----------------------------------------------------------------
    def answer_query(self, row_index: int, start: int, stop: int) -> int | None:
        """Answer an auditor's sub-product query ``A_row[start:stop] . X[start:stop]``.

        The honest and ``CORRUPT_RESULT`` strategies answer truthfully; the
        ``CONSISTENT_LIAR`` fabricates answers whose halves always sum to the
        parent claim; the ``SILENT`` strategy refuses (returns ``None``).
        """
        if self._matrix is None or self._vector is None:
            raise ConfigurationError("worker has not been given a computation yet")
        if self.strategy is WorkerStrategy.SILENT:
            return None
        truthful_answer = self._true_subproduct(row_index, start, stop)
        if self.strategy in (WorkerStrategy.HONEST, WorkerStrategy.CORRUPT_RESULT):
            self.query_log.append(
                QueryRecord(row_index, start, stop, truthful_answer, truthful=True)
            )
            return truthful_answer
        # Consistent liar: keep the lie additive across splits.
        answer = self._consistent_lie(row_index, start, stop, truthful_answer)
        self.query_log.append(
            QueryRecord(row_index, start, stop, answer, truthful=(answer == truthful_answer))
        )
        return answer

    def _true_subproduct(self, row_index: int, start: int, stop: int) -> int:
        self.field.attach_counter(self.counter)
        try:
            segment_a = self._matrix[row_index, start:stop]
            segment_x = self._vector[start:stop]
            if segment_a.shape[0] == 0:
                return 0
            return int(self.field.dot(segment_a, segment_x))
        finally:
            self.field.attach_counter(None)

    def _consistent_lie(
        self, row_index: int, start: int, stop: int, truthful_answer: int
    ) -> int:
        key = (row_index, start, stop)
        if key in self._claims:
            return self._claims[key]
        # Find the parent claim this query is a half of; keep halves summing
        # to the parent so the auditor's running check Z1 + Z2 == parent holds
        # and the fraud survives to the leaf.
        parent = self._find_parent_claim(row_index, start, stop)
        if parent is None:
            # Query outside any previous claim: answer truthfully, nothing to hide.
            self._claims[key] = truthful_answer
            return truthful_answer
        parent_key, parent_value = parent
        sibling_key = self._sibling_of(parent_key, key)
        sibling_truth = self._true_subproduct(row_index, sibling_key[1], sibling_key[2])
        if sibling_key in self._claims:
            lie = self.field.sub(parent_value, self._claims[sibling_key])
        else:
            # Tell the truth about the sibling, absorb the whole discrepancy here.
            self._claims[sibling_key] = sibling_truth
            lie = self.field.sub(parent_value, sibling_truth)
        self._claims[key] = int(lie)
        return int(lie)

    def _find_parent_claim(
        self, row_index: int, start: int, stop: int
    ) -> tuple[tuple[int, int, int], int] | None:
        best: tuple[tuple[int, int, int], int] | None = None
        for (row, p_start, p_stop), value in self._claims.items():
            if row != row_index:
                continue
            if p_start <= start and stop <= p_stop and (p_stop - p_start) > (stop - start):
                if best is None or (p_stop - p_start) < (best[0][2] - best[0][1]):
                    best = ((row, p_start, p_stop), value)
        return best

    @staticmethod
    def _sibling_of(
        parent_key: tuple[int, int, int], child_key: tuple[int, int, int]
    ) -> tuple[int, int, int]:
        row, p_start, p_stop = parent_key
        _, c_start, c_stop = child_key
        midpoint = p_start + (p_stop - p_start) // 2
        if c_start == p_start:
            return (row, midpoint, p_stop)
        return (row, p_start, midpoint)

    # -- accounting -----------------------------------------------------------------------
    @property
    def operations(self) -> int:
        return self.counter.total

    @property
    def queries_answered(self) -> int:
        return len(self.query_log)
