"""The INTERMIX auditor — Algorithm 1 of the paper.

An auditor recomputes ``Y = A X`` locally.  If the worker's broadcast ``Y^``
matches, the auditor acknowledges it.  Otherwise the auditor picks a row
``i`` with ``Y^_i != Y_i`` and interactively bisects it: at every level it
asks the worker for the two half inner-products and

* if the halves do not sum to the parent claim, it publishes that
  inconsistency (a commoner verifies it with one addition);
* otherwise at least one half must be wrong; the auditor recurses into a
  wrong half, shrinking the disputed range by half each round.

After at most ``log2 K`` rounds the disputed range is a single entry and the
claim ``Y^(j) = A^(j) X^(j)`` is itself checkable in constant time.  The
transcript of the interaction (the string ``zeta`` plus the final claims) is
what the commoners verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gf.field import Field, OperationCounter
from repro.gf.linalg import gf_matvec
from repro.intermix.worker import Worker


@dataclass
class AuditTranscript:
    """Everything a commoner needs to validate an auditor's accusation.

    Attributes
    ----------
    auditor_id:
        Who raised the alert.
    accepted:
        ``True`` when the auditor found the worker's result correct.
    row_index:
        The disputed output row ``i`` (when not accepted).
    path:
        The bisection string ``zeta``: a list of 1/2 choices, one per level.
    failure_kind:
        ``"sum-mismatch"`` when the halves did not add up to the parent claim,
        ``"leaf-mismatch"`` when the final single-entry claim is wrong,
        ``"no-response"`` when the worker refused to answer.
    parent_claim, half_claims:
        The worker's claims at the level where the inconsistency surfaced.
    leaf_range:
        ``(start, stop)`` of the final disputed segment (for leaf mismatches).
    queries_issued:
        Number of sub-product queries the auditor sent (at most ``2 log2 K``).
    """

    auditor_id: str
    accepted: bool
    row_index: int = -1
    path: list[int] = field(default_factory=list)
    failure_kind: str = ""
    parent_claim: int = 0
    half_claims: tuple[int, int] = (0, 0)
    leaf_range: tuple[int, int] = (0, 0)
    queries_issued: int = 0


class Auditor:
    """An elected committee member that re-checks the worker's product."""

    def __init__(self, node_id: str, field: Field, dishonest: bool = False) -> None:
        self.node_id = str(node_id)
        self.field = field
        self.dishonest = bool(dishonest)
        self.counter = OperationCounter()

    # -- the audit -------------------------------------------------------------------
    def audit(
        self,
        matrix: np.ndarray,
        vector: np.ndarray,
        claimed: np.ndarray | None,
        worker: Worker,
    ) -> AuditTranscript:
        """Run Algorithm 1 against the worker's claimed result."""
        matrix = self.field.array(matrix)
        vector = self.field.array(vector).reshape(-1)
        if claimed is None:
            # Worker never broadcast a result: under the synchronous broadcast
            # assumption that alone convicts it.
            return AuditTranscript(
                auditor_id=self.node_id, accepted=False, failure_kind="no-response"
            )
        claimed = self.field.array(claimed).reshape(-1)
        if claimed.shape[0] != matrix.shape[0]:
            raise ConfigurationError(
                f"claimed result has {claimed.shape[0]} rows, matrix has {matrix.shape[0]}"
            )
        self.field.attach_counter(self.counter)
        try:
            true_product = gf_matvec(self.field, matrix, vector)
        finally:
            self.field.attach_counter(None)
        return self._conclude(matrix, vector, claimed, worker, true_product)

    def audit_precomputed(
        self,
        matrix: np.ndarray,
        vector: np.ndarray,
        claimed: np.ndarray | None,
        worker: Worker,
        true_product: np.ndarray,
        multiplications: int,
        additions: int,
        mismatches: np.ndarray | None = None,
    ) -> AuditTranscript:
        """Algorithm 1 with the recomputation ``Y = A X`` supplied by the caller.

        The batched protocol computes every auditor's recomputation as one
        stacked matrix product; each auditor is charged its per-round share
        of that product's cost (``multiplications``/``additions``) and then
        concludes exactly as :meth:`audit` — acceptance, a baseless alert
        when dishonest, or the interactive bisection against the worker.
        ``mismatches`` optionally shares one precomputed comparison of
        ``true_product`` against ``claimed`` across all auditors.
        """
        matrix = self.field.array(matrix)
        vector = self.field.array(vector).reshape(-1)
        if claimed is None:
            return AuditTranscript(
                auditor_id=self.node_id, accepted=False, failure_kind="no-response"
            )
        claimed = self.field.array(claimed).reshape(-1)
        if claimed.shape[0] != matrix.shape[0]:
            raise ConfigurationError(
                f"claimed result has {claimed.shape[0]} rows, matrix has {matrix.shape[0]}"
            )
        self.counter.mul(multiplications)
        self.counter.add(additions)
        return self._conclude(
            matrix,
            vector,
            claimed,
            worker,
            self.field.array(true_product).reshape(-1),
            mismatches=mismatches,
        )

    def _conclude(
        self,
        matrix: np.ndarray,
        vector: np.ndarray,
        claimed: np.ndarray,
        worker: Worker,
        true_product: np.ndarray,
        mismatches: np.ndarray | None = None,
    ) -> AuditTranscript:
        """Accept, raise a baseless alert, or bisect — given the recomputation."""
        if mismatches is None:
            mismatches = np.nonzero(true_product != claimed)[0]
        if mismatches.shape[0] == 0:
            if self.dishonest:
                # A dishonest auditor may raise a baseless alert; commoners
                # will dismiss it in constant time.
                return AuditTranscript(
                    auditor_id=self.node_id,
                    accepted=False,
                    row_index=0,
                    failure_kind="leaf-mismatch",
                    parent_claim=int(claimed[0]),
                    leaf_range=(0, 1),
                )
            return AuditTranscript(auditor_id=self.node_id, accepted=True)

        row_index = int(mismatches[0])
        return self._bisect(matrix, vector, claimed, worker, row_index)

    def _bisect(
        self,
        matrix: np.ndarray,
        vector: np.ndarray,
        claimed: np.ndarray,
        worker: Worker,
        row_index: int,
    ) -> AuditTranscript:
        start, stop = 0, vector.shape[0]
        parent_claim = int(claimed[row_index])
        path: list[int] = []
        queries = 0
        while stop - start > 1:
            midpoint = start + (stop - start) // 2
            left_claim = worker.answer_query(row_index, start, midpoint)
            right_claim = worker.answer_query(row_index, midpoint, stop)
            queries += 2
            if left_claim is None or right_claim is None:
                return AuditTranscript(
                    auditor_id=self.node_id,
                    accepted=False,
                    row_index=row_index,
                    path=path,
                    failure_kind="no-response",
                    parent_claim=parent_claim,
                    queries_issued=queries,
                )
            self.field.attach_counter(self.counter)
            try:
                claimed_sum = self.field.add(int(left_claim), int(right_claim))
                if claimed_sum != parent_claim:
                    return AuditTranscript(
                        auditor_id=self.node_id,
                        accepted=False,
                        row_index=row_index,
                        path=path,
                        failure_kind="sum-mismatch",
                        parent_claim=parent_claim,
                        half_claims=(int(left_claim), int(right_claim)),
                        leaf_range=(start, stop),
                        queries_issued=queries,
                    )
                # The halves add up: at least one of them is wrong; find it.
                left_truth = int(
                    self.field.dot(matrix[row_index, start:midpoint], vector[start:midpoint])
                ) if midpoint > start else 0
            finally:
                self.field.attach_counter(None)
            if left_truth != int(left_claim):
                stop = midpoint
                parent_claim = int(left_claim)
                path.append(1)
            else:
                start = midpoint
                parent_claim = int(right_claim)
                path.append(2)
        return AuditTranscript(
            auditor_id=self.node_id,
            accepted=False,
            row_index=row_index,
            path=path,
            failure_kind="leaf-mismatch",
            parent_claim=parent_claim,
            leaf_range=(start, stop),
            queries_issued=queries,
        )

    @property
    def operations(self) -> int:
        return self.counter.total
