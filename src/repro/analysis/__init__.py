"""Analysis layer: closed-form formulas, limits and measurement harnesses.

* :mod:`repro.analysis.metrics` — the Table 1 closed forms (security, storage
  efficiency, throughput) for full replication, partial replication, the
  information-theoretic limits, and CSM.
* :mod:`repro.analysis.bounds` — the Table 2 fault bounds per phase and
  network model.
* :mod:`repro.analysis.complexity` — operation-count models: ``c(f)`` for a
  polynomial transition, naive vs quasilinear coding cost, and helpers to fit
  measured counts against the model.
* :mod:`repro.analysis.measurement` — drives the actual execution engines to
  *measure* security / storage / throughput so the experiments can put
  paper-formula and measured values side by side.
"""

from repro.analysis.metrics import (
    SchemeMetrics,
    full_replication_metrics,
    partial_replication_metrics,
    information_theoretic_limit,
    csm_metrics,
    table1_rows,
)
from repro.analysis.bounds import table2_rows, phase_bounds
from repro.analysis.complexity import (
    transition_operation_count,
    naive_coding_cost,
    quasilinear_coding_cost,
    intermix_worst_case_overhead,
)
from repro.analysis.measurement import (
    MeasuredPerformance,
    measure_full_replication,
    measure_partial_replication,
    measure_csm,
    find_breaking_faults,
)

__all__ = [
    "SchemeMetrics",
    "full_replication_metrics",
    "partial_replication_metrics",
    "information_theoretic_limit",
    "csm_metrics",
    "table1_rows",
    "table2_rows",
    "phase_bounds",
    "transition_operation_count",
    "naive_coding_cost",
    "quasilinear_coding_cost",
    "intermix_worst_case_overhead",
    "MeasuredPerformance",
    "measure_full_replication",
    "measure_partial_replication",
    "measure_csm",
    "find_breaking_faults",
]
