"""Operation-count models for the throughput analysis.

The paper expresses throughput in units of field operations per node:

* ``c(f)`` — cost of evaluating the transition polynomial once; for a
  polynomial with ``T`` terms of total degree ``<= d`` this is ``O(T * d)``
  multiplications plus ``T`` additions, which
  :func:`transition_operation_count` computes exactly from the polynomial's
  term structure.
* ``c(coding)`` — the per-node coding cost.  Without delegation every node
  multiplies its coefficient row into the commands (``Theta(K)``) and decodes
  a length-``N`` Reed–Solomon code (``Theta(N^2)`` with the textbook decoder,
  ``O(N log^2 N log log N)`` with fast algorithms).  With INTERMIX delegation
  the non-worker cost collapses to ``O(1)`` per verification and the paper's
  quoted per-node figure becomes ``O(log^2 N log log N)`` after amortising
  the worker's quasilinear cost over the whole network.
"""

from __future__ import annotations

import math

from repro.machine.polynomial_machine import PolynomialTransition


def transition_operation_count(transition: PolynomialTransition) -> int:
    """Exact add/mul count for one evaluation of every component polynomial."""
    total = 0
    for poly in transition.next_state_polys + transition.output_polys:
        for exponents, _coefficient in poly.terms.items():
            # one multiplication per unit of degree (power-by-repeated-squaring
            # is cheaper but this matches the naive evaluation the nodes do),
            # one multiplication by the coefficient, one addition to the sum.
            total += sum(exponents) + 2
    return total


def naive_coding_cost(num_nodes: int, num_machines: int) -> float:
    """Per-node coding cost without delegation.

    Encoding the coded command costs ``2K`` operations (one multiply-add per
    machine); decoding a length-``N`` dimension-``d(K-1)+1`` RS code with a
    quadratic-complexity decoder costs ``c N^2``; updating the coded state is
    another ``2K``.  The constant in front of ``N^2`` is taken as 1.
    """
    return 4.0 * num_machines + float(num_nodes) ** 2


def quasilinear_coding_cost(num_nodes: int) -> float:
    """The paper's fast-polynomial-arithmetic cost model ``N log^2 N log log N``."""
    if num_nodes < 2:
        return 1.0
    log_n = math.log2(num_nodes)
    return num_nodes * log_n**2 * max(math.log2(max(log_n, 2.0)), 1.0)


def per_node_delegated_coding_cost(num_nodes: int) -> float:
    """Amortised per-node coding cost with delegation: ``log^2 N log log N``."""
    return quasilinear_coding_cost(num_nodes) / max(num_nodes, 1)


def intermix_worst_case_overhead(
    num_nodes: int, vector_length: int, committee_size: int, product_cost: float
) -> float:
    """Section 6.1's worst-case complexity of one INTERMIX run.

    ``(J + 1) c(AX) + 8 J K + 3 J log K + N - J - 1`` where ``K`` is the
    vector length and ``J`` the number of auditors.
    """
    j = committee_size
    k = max(vector_length, 2)
    return (
        (j + 1) * product_cost
        + 8.0 * j * k
        + 3.0 * j * math.log2(k)
        + num_nodes
        - j
        - 1
    )


def csm_total_execution_cost(
    num_nodes: int, transition_cost: float, delegated: bool = True
) -> float:
    """Aggregate execution-phase cost across the network for one round.

    With delegation: one quasilinear worker/auditor term plus ``O(1)`` per
    remaining node plus every node's transition evaluation.  Without
    delegation every node pays the naive coding cost itself.
    """
    if delegated:
        return quasilinear_coding_cost(num_nodes) + num_nodes * (transition_cost + 1.0)
    return num_nodes * (naive_coding_cost(num_nodes, max(num_nodes // 2, 1)) + transition_cost)
