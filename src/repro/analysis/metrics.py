"""Closed-form performance formulas — the rows of Table 1.

================  ===========  ==================  =====================================
Scheme            Security     Storage efficiency  Throughput
================  ===========  ==================  =====================================
Full replication  N/2          1                   1 / c(f)
Partial repl.     N/(2K)       K                   K / c(f)
Info-theoretic    N/2          N                   N / c(f)
CSM               mu N         (1-2mu)N/d + 1-1/d  ((1-2mu)N/d + 1-1/d)/(c(f)+c(coding))
================  ===========  ==================  =====================================

Throughput is measured in commands per unit of per-node field operations; the
formulas take ``c(f)`` (cost of one transition evaluation) and ``c(coding)``
(per-node coding cost) as parameters so the experiments can plug in either
the model values from :mod:`repro.analysis.complexity` or measured counts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SchemeMetrics:
    """One Table 1 row: the three scaling metrics of a scheme."""

    scheme: str
    security: float
    storage_efficiency: float
    throughput: float

    def as_row(self) -> dict[str, float | str]:
        return {
            "scheme": self.scheme,
            "security": self.security,
            "storage_efficiency": self.storage_efficiency,
            "throughput": self.throughput,
        }


def full_replication_metrics(
    num_nodes: int, transition_cost: float, partially_synchronous: bool = False
) -> SchemeMetrics:
    """Full replication: beta = N/2 (N/3 partial-sync), gamma = 1, lambda = 1/c(f)."""
    divisor = 3 if partially_synchronous else 2
    return SchemeMetrics(
        scheme="full-replication",
        security=(num_nodes - 1) // divisor,
        storage_efficiency=1.0,
        throughput=1.0 / transition_cost,
    )


def partial_replication_metrics(
    num_nodes: int,
    num_machines: int,
    transition_cost: float,
    partially_synchronous: bool = False,
) -> SchemeMetrics:
    """Partial replication: beta = q/2 with q = N/K, gamma = K, lambda = K/c(f)."""
    group_size = num_nodes // num_machines
    divisor = 3 if partially_synchronous else 2
    return SchemeMetrics(
        scheme="partial-replication",
        security=(group_size - 1) // divisor,
        storage_efficiency=float(num_machines),
        throughput=num_machines / transition_cost,
    )


def information_theoretic_limit(
    num_nodes: int, transition_cost: float
) -> SchemeMetrics:
    """Upper bounds: beta <= N/2, gamma <= N, lambda <= N/c(f)."""
    return SchemeMetrics(
        scheme="information-theoretic-limit",
        security=num_nodes / 2,
        storage_efficiency=float(num_nodes),
        throughput=num_nodes / transition_cost,
    )


def csm_supported_machines(
    num_nodes: int, fault_fraction: float, degree: int, partially_synchronous: bool = False
) -> int:
    """``floor((1 - 2mu) N / d + 1 - 1/d)`` (``1 - 3nu`` for partial synchrony)."""
    penalty = 3.0 if partially_synchronous else 2.0
    value = (1.0 - penalty * fault_fraction) * num_nodes / degree + 1.0 - 1.0 / degree
    return max(int(value), 0)


def csm_metrics(
    num_nodes: int,
    fault_fraction: float,
    degree: int,
    transition_cost: float,
    coding_cost: float,
    partially_synchronous: bool = False,
) -> SchemeMetrics:
    """CSM: beta = mu N, gamma = K_max, lambda = K_max / (c(f) + c(coding))."""
    supported = csm_supported_machines(
        num_nodes, fault_fraction, degree, partially_synchronous
    )
    return SchemeMetrics(
        scheme="coded-state-machine",
        security=fault_fraction * num_nodes,
        storage_efficiency=float(supported),
        throughput=supported / (transition_cost + coding_cost),
    )


def table1_rows(
    num_nodes: int,
    num_machines: int,
    fault_fraction: float,
    degree: int,
    transition_cost: float,
    coding_cost: float,
    partially_synchronous: bool = False,
) -> list[SchemeMetrics]:
    """All four rows of Table 1 for one parameter point."""
    return [
        full_replication_metrics(num_nodes, transition_cost, partially_synchronous),
        partial_replication_metrics(
            num_nodes, num_machines, transition_cost, partially_synchronous
        ),
        information_theoretic_limit(num_nodes, transition_cost),
        csm_metrics(
            num_nodes,
            fault_fraction,
            degree,
            transition_cost,
            coding_cost,
            partially_synchronous,
        ),
    ]
