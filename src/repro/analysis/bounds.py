"""Table 2: fault bounds for each phase of the protocol.

The table lists, for both network models, the largest number of malicious
nodes ``b`` compatible with (i) reaching consensus on the input commands,
(ii) successful Reed–Solomon decoding in the execution phase, and
(iii) secure delivery of the outputs to the clients.  The decoding bound is
the binding one, and is what Theorem 1 / Theorem 2 build on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.coding.radius import composite_degree


@dataclass(frozen=True)
class PhaseBound:
    """One cell of Table 2: the largest admissible ``b`` for one phase."""

    setting: str
    phase: str
    constraint: str
    max_faults: int


def phase_bounds(num_nodes: int, num_machines: int, degree: int) -> dict[str, dict[str, int]]:
    """The six Table 2 cells as nested dict ``{setting: {phase: max_b}}``."""
    deg = composite_degree(num_machines, degree)
    return {
        "synchronous": {
            # b + 1 <= N
            "input-consensus": num_nodes - 1,
            # 2b + 1 <= N - d(K-1)
            "decoding": max((num_nodes - deg - 1) // 2, -1),
            # 2b + 1 <= N
            "output-delivery": (num_nodes - 1) // 2,
        },
        "partially-synchronous": {
            # 3b + 1 <= N
            "input-consensus": (num_nodes - 1) // 3,
            # 3b + 1 <= N - d(K-1)
            "decoding": max((num_nodes - deg - 1) // 3, -1),
            # 2b + 1 <= N
            "output-delivery": (num_nodes - 1) // 2,
        },
    }


def table2_rows(num_nodes: int, num_machines: int, degree: int) -> list[PhaseBound]:
    """Table 2 in row form (with the defining inequality spelled out)."""
    deg = composite_degree(num_machines, degree)
    bounds = phase_bounds(num_nodes, num_machines, degree)
    constraints = {
        ("synchronous", "input-consensus"): "b + 1 <= N",
        ("synchronous", "decoding"): f"2b + 1 <= N - d(K-1) = {num_nodes - deg}",
        ("synchronous", "output-delivery"): "2b + 1 <= N",
        ("partially-synchronous", "input-consensus"): "3b + 1 <= N",
        ("partially-synchronous", "decoding"): f"3b + 1 <= N - d(K-1) = {num_nodes - deg}",
        ("partially-synchronous", "output-delivery"): "2b + 1 <= N",
    }
    rows = []
    for setting, phases in bounds.items():
        for phase, max_faults in phases.items():
            rows.append(
                PhaseBound(
                    setting=setting,
                    phase=phase,
                    constraint=constraints[(setting, phase)],
                    max_faults=max_faults,
                )
            )
    return rows


def binding_bound(num_nodes: int, num_machines: int, degree: int, partially_synchronous: bool) -> int:
    """The overall security of the system: the minimum over the three phases."""
    setting = "partially-synchronous" if partially_synchronous else "synchronous"
    phases = phase_bounds(num_nodes, num_machines, degree)[setting]
    return min(phases.values())
