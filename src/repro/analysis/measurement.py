"""Measurement harnesses: run the execution engines and record the metrics.

These helpers are the bridge between the library and the experiment /
benchmark layer: each one builds a scheme (full replication, partial
replication, or CSM), injects a chosen number of Byzantine nodes, runs a few
rounds of a workload and reports measured security (did every client still
obtain the correct output?), storage efficiency, and throughput (commands per
unit per-node field operation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.exceptions import DecodingError, SecurityViolation
from repro.core.config import CSMConfig
from repro.core.execution import CodedExecutionEngine
from repro.machine.interface import StateMachine
from repro.net.byzantine import ByzantineBehavior, RandomGarbageBehavior
from repro.replication.full import FullReplicationSMR
from repro.replication.partial import PartialReplicationSMR
from repro.rng import default_stream


def wall_clock() -> float:
    """Monotonic wall-clock read for throughput timing.

    ``analysis/measurement.py`` is the DET002-allowlisted timing site: all
    wall-clock reads in experiment code route through this helper so that
    protocol/simulation code provably never touches the real clock (the
    simulated ``network.now`` is the only time protocols may observe).
    """
    return time.perf_counter()


@dataclass
class MeasuredPerformance:
    """Measured metrics of one scheme at one parameter point."""

    scheme: str
    num_nodes: int
    num_machines: int
    num_faults: int
    rounds: int
    all_correct: bool
    storage_efficiency: float
    mean_ops_per_node: float
    throughput: float
    failed_rounds: int = 0
    batched: bool = False

    def as_row(self) -> dict:
        return {
            "scheme": self.scheme,
            "N": self.num_nodes,
            "K": self.num_machines,
            "b": self.num_faults,
            "correct": self.all_correct,
            "storage_efficiency": self.storage_efficiency,
            "ops_per_node": self.mean_ops_per_node,
            "throughput": self.throughput,
            "failed_rounds": self.failed_rounds,
        }


def _fault_behaviors(
    node_ids: list[str], num_faults: int, rng: np.random.Generator,
    behavior_factory=RandomGarbageBehavior,
) -> dict[str, ByzantineBehavior]:
    """Pick ``num_faults`` nodes (at random) and give them a faulty behaviour."""
    if num_faults > len(node_ids):
        raise ValueError(
            f"num_faults {num_faults} exceeds the number of nodes "
            f"{len(node_ids)}; refusing to silently run with fewer faults "
            "than requested"
        )
    if num_faults <= 0:
        return {}
    chosen = rng.choice(len(node_ids), size=num_faults, replace=False)
    return {node_ids[int(i)]: behavior_factory() for i in chosen}


def _workload(machine: StateMachine, num_machines: int, rounds: int, rng: np.random.Generator):
    """Random command batches, one per round."""
    return [
        rng.integers(1, 1000, size=(num_machines, machine.command_dim))
        for _ in range(rounds)
    ]


def _execute_workload(
    engine, workload: list[np.ndarray], batched: bool
) -> tuple[bool, float, int]:
    """Run the workload; every executed round counts.

    Returns ``(all_correct, mean_ops_per_node, failed_rounds)``.  A round is
    *failed* when its engine call raises (:class:`SecurityViolation` /
    :class:`DecodingError`) or when it returns an incorrect result (wrong
    accepted output, decoding failure past the radius).  Failed rounds stay
    in the denominator: nodes spent the work whether or not the clients got
    a correct answer, and dropping them used to bias ``mean_ops_per_node``
    (and hence throughput) upward exactly when faults bite.  For rounds that
    raise, per-node operations are recovered from the engine's node counters
    when the engine keeps them (CSM); otherwise the round is reported in
    ``failed_rounds`` but cannot contribute operations.
    """
    all_correct = True
    ops: list[float] = []
    failed_rounds = 0
    if batched:
        try:
            results = engine.execute_rounds(np.stack(workload))
        except (SecurityViolation, DecodingError):
            # Same contract as the scalar branch: a raising engine loses its
            # per-round records, but every requested round is still reported
            # as executed-and-failed (current engines record failures in the
            # RoundResult instead of raising, so this is a safety net).
            all_correct = False
            failed_rounds = len(workload)
            nodes = getattr(engine, "nodes", None)
            if nodes:
                ops.append(float(np.mean([node.counter.total for node in nodes])))
            results = []
        for result in results:
            if not result.correct:
                failed_rounds += 1
                all_correct = False
            ops.append(result.mean_ops_per_node)
    else:
        for commands in workload:
            try:
                result = engine.execute_round(commands)
            except (SecurityViolation, DecodingError):
                failed_rounds += 1
                all_correct = False
                nodes = getattr(engine, "nodes", None)
                if nodes:
                    ops.append(
                        float(np.mean([node.counter.total for node in nodes]))
                    )
                continue
            if not result.correct:
                failed_rounds += 1
                all_correct = False
            ops.append(result.mean_ops_per_node)
    mean_ops = float(np.mean(ops)) if ops else 0.0
    return all_correct, mean_ops, failed_rounds


def measure_full_replication(
    machine: StateMachine,
    num_nodes: int,
    num_machines: int,
    num_faults: int,
    rounds: int = 3,
    seed: int = 0,
    batched: bool = False,
) -> MeasuredPerformance:
    """Run full replication and measure correctness / ops / throughput."""
    rng = default_stream(seed)
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    behaviors = _fault_behaviors(node_ids, num_faults, rng)
    engine = FullReplicationSMR(machine, num_machines, node_ids, behaviors, rng)
    correct, mean_ops, failed_rounds = _execute_workload(
        engine, _workload(machine, num_machines, rounds, rng), batched
    )
    return MeasuredPerformance(
        scheme="full-replication",
        num_nodes=num_nodes,
        num_machines=num_machines,
        num_faults=num_faults,
        rounds=rounds,
        all_correct=correct,
        storage_efficiency=engine.storage_efficiency,
        mean_ops_per_node=mean_ops,
        throughput=num_machines / mean_ops if mean_ops else float("inf"),
        failed_rounds=failed_rounds,
        batched=batched,
    )


def measure_partial_replication(
    machine: StateMachine,
    num_nodes: int,
    num_machines: int,
    num_faults: int,
    rounds: int = 3,
    seed: int = 0,
    concentrate_faults: bool = True,
    batched: bool = False,
) -> MeasuredPerformance:
    """Run partial replication; faults are concentrated on group 0 by default.

    Concentrating the corruptions on a single group is exactly the adversary
    the paper describes ("once the adversary identifies this set and then
    corrupts it"), and is what makes partial replication's security collapse
    to ``q / 2``.
    """
    rng = default_stream(seed)
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    if concentrate_faults:
        if num_faults > num_nodes:
            raise ValueError(
                f"num_faults {num_faults} exceeds the number of nodes {num_nodes}"
            )
        behaviors = {
            node_ids[i]: RandomGarbageBehavior() for i in range(num_faults)
        }
    else:
        behaviors = _fault_behaviors(node_ids, num_faults, rng)
    engine = PartialReplicationSMR(machine, num_machines, node_ids, behaviors, rng)
    correct, mean_ops, failed_rounds = _execute_workload(
        engine, _workload(machine, num_machines, rounds, rng), batched
    )
    return MeasuredPerformance(
        scheme="partial-replication",
        num_nodes=num_nodes,
        num_machines=num_machines,
        num_faults=num_faults,
        rounds=rounds,
        all_correct=correct,
        storage_efficiency=engine.storage_efficiency,
        mean_ops_per_node=mean_ops,
        throughput=num_machines / mean_ops if mean_ops else float("inf"),
        failed_rounds=failed_rounds,
        batched=batched,
    )


def measure_csm(
    machine: StateMachine,
    num_nodes: int,
    num_machines: int,
    num_faults: int,
    rounds: int = 3,
    seed: int = 0,
    partially_synchronous: bool = False,
    behavior_factory=RandomGarbageBehavior,
    batched: bool = False,
) -> MeasuredPerformance:
    """Run CSM's coded execution and measure correctness / ops / throughput.

    When the requested ``(N, K, b)`` point violates the decoding bound the
    configuration is still built with ``num_faults=0`` for feasibility and
    the faults are injected anyway — measuring what actually happens past the
    bound (decoding failures) is part of the Table 2 experiment.

    ``batched=True`` drives the engine through the cached-matrix
    ``execute_rounds`` pipeline (bit-identical outputs, amortised
    encode/decode cost); the default keeps the scalar round-by-round path so
    existing experiments measure the textbook protocol.
    """
    rng = default_stream(seed)
    config_faults = num_faults
    try:
        config = CSMConfig(
            field=machine.field,
            num_nodes=num_nodes,
            num_machines=num_machines,
            degree=machine.degree,
            num_faults=config_faults,
            partially_synchronous=partially_synchronous,
        )
    except Exception:
        config = CSMConfig(
            field=machine.field,
            num_nodes=num_nodes,
            num_machines=num_machines,
            degree=machine.degree,
            num_faults=0,
            partially_synchronous=partially_synchronous,
        )
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    behaviors = _fault_behaviors(node_ids, num_faults, rng, behavior_factory)
    engine = CodedExecutionEngine(config, machine, node_ids, behaviors, rng)
    correct, mean_ops, failed_rounds = _execute_workload(
        engine, _workload(machine, num_machines, rounds, rng), batched
    )
    return MeasuredPerformance(
        scheme="coded-state-machine",
        num_nodes=num_nodes,
        num_machines=num_machines,
        num_faults=num_faults,
        rounds=rounds,
        all_correct=correct,
        storage_efficiency=engine.storage_efficiency,
        mean_ops_per_node=mean_ops,
        throughput=num_machines / mean_ops if mean_ops else float("inf"),
        failed_rounds=failed_rounds,
        batched=batched,
    )


def find_breaking_faults(measure, machine, num_nodes: int, num_machines: int, max_faults: int, **kwargs) -> int:
    """Empirical security: the largest ``b`` for which the scheme stays correct.

    ``measure`` is one of the ``measure_*`` functions above.  The sweep is
    monotone in spirit but adversarial placements can be lucky, so the
    function returns the largest ``b`` such that *all* fault counts up to and
    including ``b`` were correct.
    """
    largest_correct = -1
    for b in range(0, max_faults + 1):
        outcome = measure(machine, num_nodes, num_machines, b, **kwargs)
        if outcome.all_correct:
            largest_correct = b
        else:
            break
    return largest_correct
