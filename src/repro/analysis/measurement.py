"""Measurement harnesses: run the execution engines and record the metrics.

These helpers are the bridge between the library and the experiment /
benchmark layer: each one builds a scheme (full replication, partial
replication, or CSM), injects a chosen number of Byzantine nodes, runs a few
rounds of a workload and reports measured security (did every client still
obtain the correct output?), storage efficiency, and throughput (commands per
unit per-node field operation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DecodingError, SecurityViolation
from repro.core.config import CSMConfig
from repro.core.execution import CodedExecutionEngine
from repro.machine.interface import StateMachine
from repro.net.byzantine import ByzantineBehavior, RandomGarbageBehavior
from repro.replication.full import FullReplicationSMR
from repro.replication.partial import PartialReplicationSMR


@dataclass
class MeasuredPerformance:
    """Measured metrics of one scheme at one parameter point."""

    scheme: str
    num_nodes: int
    num_machines: int
    num_faults: int
    rounds: int
    all_correct: bool
    storage_efficiency: float
    mean_ops_per_node: float
    throughput: float

    def as_row(self) -> dict:
        return {
            "scheme": self.scheme,
            "N": self.num_nodes,
            "K": self.num_machines,
            "b": self.num_faults,
            "correct": self.all_correct,
            "storage_efficiency": self.storage_efficiency,
            "ops_per_node": self.mean_ops_per_node,
            "throughput": self.throughput,
        }


def _fault_behaviors(
    node_ids: list[str], num_faults: int, rng: np.random.Generator,
    behavior_factory=RandomGarbageBehavior,
) -> dict[str, ByzantineBehavior]:
    """Pick ``num_faults`` nodes (at random) and give them a faulty behaviour."""
    if num_faults <= 0:
        return {}
    chosen = rng.choice(len(node_ids), size=min(num_faults, len(node_ids)), replace=False)
    return {node_ids[int(i)]: behavior_factory() for i in chosen}


def _workload(machine: StateMachine, num_machines: int, rounds: int, rng: np.random.Generator):
    """Random command batches, one per round."""
    return [
        rng.integers(1, 1000, size=(num_machines, machine.command_dim))
        for _ in range(rounds)
    ]


def measure_full_replication(
    machine: StateMachine,
    num_nodes: int,
    num_machines: int,
    num_faults: int,
    rounds: int = 3,
    seed: int = 0,
) -> MeasuredPerformance:
    """Run full replication and measure correctness / ops / throughput."""
    rng = np.random.default_rng(seed)
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    behaviors = _fault_behaviors(node_ids, num_faults, rng)
    engine = FullReplicationSMR(machine, num_machines, node_ids, behaviors, rng)
    correct = True
    ops = []
    for commands in _workload(machine, num_machines, rounds, rng):
        try:
            result = engine.execute_round(commands)
        except SecurityViolation:
            correct = False
            continue
        correct = correct and result.correct
        ops.append(result.mean_ops_per_node)
    mean_ops = float(np.mean(ops)) if ops else 0.0
    return MeasuredPerformance(
        scheme="full-replication",
        num_nodes=num_nodes,
        num_machines=num_machines,
        num_faults=num_faults,
        rounds=rounds,
        all_correct=correct,
        storage_efficiency=engine.storage_efficiency,
        mean_ops_per_node=mean_ops,
        throughput=num_machines / mean_ops if mean_ops else float("inf"),
    )


def measure_partial_replication(
    machine: StateMachine,
    num_nodes: int,
    num_machines: int,
    num_faults: int,
    rounds: int = 3,
    seed: int = 0,
    concentrate_faults: bool = True,
) -> MeasuredPerformance:
    """Run partial replication; faults are concentrated on group 0 by default.

    Concentrating the corruptions on a single group is exactly the adversary
    the paper describes ("once the adversary identifies this set and then
    corrupts it"), and is what makes partial replication's security collapse
    to ``q / 2``.
    """
    rng = np.random.default_rng(seed)
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    if concentrate_faults:
        behaviors = {
            node_ids[i]: RandomGarbageBehavior()
            for i in range(min(num_faults, num_nodes))
        }
    else:
        behaviors = _fault_behaviors(node_ids, num_faults, rng)
    engine = PartialReplicationSMR(machine, num_machines, node_ids, behaviors, rng)
    correct = True
    ops = []
    for commands in _workload(machine, num_machines, rounds, rng):
        try:
            result = engine.execute_round(commands)
        except SecurityViolation:
            correct = False
            continue
        correct = correct and result.correct
        ops.append(result.mean_ops_per_node)
    mean_ops = float(np.mean(ops)) if ops else 0.0
    return MeasuredPerformance(
        scheme="partial-replication",
        num_nodes=num_nodes,
        num_machines=num_machines,
        num_faults=num_faults,
        rounds=rounds,
        all_correct=correct,
        storage_efficiency=engine.storage_efficiency,
        mean_ops_per_node=mean_ops,
        throughput=num_machines / mean_ops if mean_ops else float("inf"),
    )


def measure_csm(
    machine: StateMachine,
    num_nodes: int,
    num_machines: int,
    num_faults: int,
    rounds: int = 3,
    seed: int = 0,
    partially_synchronous: bool = False,
    behavior_factory=RandomGarbageBehavior,
) -> MeasuredPerformance:
    """Run CSM's coded execution and measure correctness / ops / throughput.

    When the requested ``(N, K, b)`` point violates the decoding bound the
    configuration is still built with ``num_faults=0`` for feasibility and
    the faults are injected anyway — measuring what actually happens past the
    bound (decoding failures) is part of the Table 2 experiment.
    """
    rng = np.random.default_rng(seed)
    config_faults = num_faults
    try:
        config = CSMConfig(
            field=machine.field,
            num_nodes=num_nodes,
            num_machines=num_machines,
            degree=machine.degree,
            num_faults=config_faults,
            partially_synchronous=partially_synchronous,
        )
    except Exception:
        config = CSMConfig(
            field=machine.field,
            num_nodes=num_nodes,
            num_machines=num_machines,
            degree=machine.degree,
            num_faults=0,
            partially_synchronous=partially_synchronous,
        )
    node_ids = [f"node-{i}" for i in range(num_nodes)]
    behaviors = _fault_behaviors(node_ids, num_faults, rng, behavior_factory)
    engine = CodedExecutionEngine(config, machine, node_ids, behaviors, rng)
    correct = True
    ops = []
    for commands in _workload(machine, num_machines, rounds, rng):
        try:
            result = engine.execute_round(commands)
        except DecodingError:
            correct = False
            continue
        correct = correct and result.correct
        ops.append(result.mean_ops_per_node)
    mean_ops = float(np.mean(ops)) if ops else 0.0
    return MeasuredPerformance(
        scheme="coded-state-machine",
        num_nodes=num_nodes,
        num_machines=num_machines,
        num_faults=num_faults,
        rounds=rounds,
        all_correct=correct,
        storage_efficiency=engine.storage_efficiency,
        mean_ops_per_node=mean_ops,
        throughput=num_machines / mean_ops if mean_ops else float("inf"),
    )


def find_breaking_faults(measure, machine, num_nodes: int, num_machines: int, max_faults: int, **kwargs) -> int:
    """Empirical security: the largest ``b`` for which the scheme stays correct.

    ``measure`` is one of the ``measure_*`` functions above.  The sweep is
    monotone in spirit but adversarial placements can be lucky, so the
    function returns the largest ``b`` such that *all* fault counts up to and
    including ``b`` were correct.
    """
    largest_correct = -1
    for b in range(0, max_faults + 1):
        outcome = measure(machine, num_nodes, num_machines, b, **kwargs)
        if outcome.all_correct:
            largest_correct = b
        else:
            break
    return largest_correct
