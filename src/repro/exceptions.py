"""Exception hierarchy shared across the CSM reproduction library.

Every error raised by the library derives from :class:`CSMError`, so callers
can catch a single base class.  Sub-classes distinguish the layer that failed:
field arithmetic, coding/decoding, consensus, protocol security, liveness, and
INTERMIX verification.
"""

from __future__ import annotations


class CSMError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(CSMError):
    """A system configuration is invalid or internally inconsistent.

    Raised, for example, when the requested number of state machines ``K``
    exceeds what the decoding bound permits for the given ``N``, ``d`` and
    fault fraction, or when a field is too small to assign distinct
    evaluation points.
    """


class FieldError(CSMError):
    """Invalid finite-field construction or operation (e.g. inverting zero)."""


class DecodingError(CSMError):
    """Noisy polynomial interpolation / Reed–Solomon decoding failed.

    This occurs when the number of erroneous evaluations exceeds the decoding
    radius, or when the received word is not within distance ``(N - k) / 2``
    of any codeword.
    """


class ConsensusError(CSMError):
    """The consensus phase could not reach agreement under the fault bound."""


class SecurityViolation(CSMError):
    """An invariant that should hold for honest nodes was observed broken.

    Raised by audit hooks in tests and experiments when, e.g., two honest
    nodes decide different command vectors, or an honest node's recovered
    state diverges from the reference execution.
    """


class LivenessError(CSMError):
    """The protocol failed to make progress (e.g. insufficient responses)."""


class ServiceError(CSMError):
    """The client-session service was used inconsistently.

    Raised by :mod:`repro.service` on illegal command-ticket lifecycle
    transitions or when a scheduled batch and the backend's round records
    disagree in shape.
    """


class VerificationError(CSMError):
    """INTERMIX verification rejected a worker's result."""
