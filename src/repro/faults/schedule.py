"""Declarative fault schedules: composable events keyed by (round, target).

A :class:`FaultSchedule` is built fluently::

    schedule = (
        FaultSchedule()
        .crash("node-3", at=2, until=5)          # crash rounds 2..4, recover at 5
        .behavior("node-1", "corrupt", at=4, until=6)
        .drop_link("node-0", "node-2", at=1, until=3)
        .partition([["node-0", "node-1"], ["node-2", "node-3"]], at=7, until=9)
    )

and applied by a :class:`~repro.faults.injector.FaultInjector`, which splits
each driven batch at event boundaries so every executed segment sees a
constant fault state.  Targets may be literal node ids or the adaptive
``"@primary"`` (the node that would lead the event's round at view 0) /
``"@worker"`` (the delegation backend's currently elected worker), resolved
at injection time.

Schedules are pure data — building one draws no randomness; the seeded
:meth:`FaultSchedule.random` generator consumes only the caller's stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError

#: Event kinds that swap a node's behaviour (need a behaviour-capable backend).
NODE_KINDS = frozenset({"crash", "recover", "behavior", "restore"})

#: Event kinds that mutate the network's link-fault switchboard.
NETWORK_KINDS = frozenset(
    {
        "drop-node",
        "undrop-node",
        "drop-link",
        "undrop-link",
        "delay",
        "undelay",
        "partition",
        "heal",
    }
)

_ALL_KINDS = NODE_KINDS | NETWORK_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault transition, applied before its round executes.

    ``round_index`` is the backend round index (global, monotone across
    batches) at whose boundary the event fires.  ``target`` is a node id or
    adaptive target for node/drop-node events; ``link`` a directed
    ``(sender, recipient)`` pair; ``spec`` a behaviour spec string for
    ``behavior`` events; ``groups``/``extra_delay`` parameterise partitions
    and delay bursts.
    """

    round_index: int
    kind: str
    target: str | None = None
    spec: str | None = None
    link: tuple[str, str] | None = None
    groups: tuple[frozenset[str], ...] | None = None
    extra_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise ConfigurationError(
                f"fault event round must be non-negative, got {self.round_index}"
            )
        if self.kind not in _ALL_KINDS:
            raise ConfigurationError(
                f"unknown fault event kind {self.kind!r}; choose from "
                f"{sorted(_ALL_KINDS)}"
            )

    def describe(self) -> dict[str, object]:
        """Compact JSON-friendly view used by the fault report."""
        entry: dict[str, object] = {"round": self.round_index, "kind": self.kind}
        if self.target is not None:
            entry["target"] = self.target
        if self.spec is not None:
            entry["spec"] = self.spec
        if self.link is not None:
            entry["link"] = list(self.link)
        if self.groups is not None:
            entry["groups"] = [sorted(group) for group in self.groups]
        if self.extra_delay:
            entry["extra_delay"] = self.extra_delay
        return entry


class FaultSchedule:
    """An ordered, composable collection of :class:`FaultEvent`\\ s."""

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self._events: list[FaultEvent] = list(events)

    @classmethod
    def empty(cls) -> "FaultSchedule":
        """The no-fault schedule: injecting it is bit-identical to no plane."""
        return cls()

    # -- introspection ------------------------------------------------------------------
    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """Events in application order: by round, insertion order within one.

        ``sorted`` is stable, so events sharing a round apply in the order
        they were added.
        """
        return tuple(sorted(self._events, key=lambda event: event.round_index))

    def is_empty(self) -> bool:
        return not self._events

    def has_node_events(self) -> bool:
        return any(event.kind in NODE_KINDS for event in self._events)

    def has_network_events(self) -> bool:
        return any(event.kind in NETWORK_KINDS for event in self._events)

    def max_round(self) -> int:
        """Highest round any event fires at (``-1`` for an empty schedule)."""
        return max((event.round_index for event in self._events), default=-1)

    def describe(self) -> list[dict[str, object]]:
        return [event.describe() for event in self.events]

    # -- builders -----------------------------------------------------------------------
    def add(self, event: FaultEvent) -> "FaultSchedule":
        self._events.append(event)
        return self

    def crash(
        self, node: str, at: int, until: int | None = None
    ) -> "FaultSchedule":
        """Crash ``node`` at round ``at``; recover (with resync) at ``until``.

        A crashed node is silent in consensus *and* contributes no coded row
        until recovery, when a state transfer re-encodes its row from the
        current reference states.  ``until=None`` leaves it down for good.
        """
        self.add(FaultEvent(round_index=at, kind="crash", target=str(node)))
        if until is not None:
            self._check_span(at, until)
            self.add(FaultEvent(round_index=until, kind="recover", target=str(node)))
        return self

    def behavior(
        self, node: str, spec: str, at: int, until: int | None = None
    ) -> "FaultSchedule":
        """Give ``node`` the behaviour named by ``spec`` for rounds
        ``[at, until)``; at ``until`` the original behaviour is restored and
        the node is resynced (its coded row went stale while misbehaving)."""
        self.add(
            FaultEvent(round_index=at, kind="behavior", target=str(node), spec=str(spec))
        )
        if until is not None:
            self._check_span(at, until)
            self.add(FaultEvent(round_index=until, kind="restore", target=str(node)))
        return self

    def drop_node(self, node: str, at: int, until: int) -> "FaultSchedule":
        """Drop every message to or from ``node`` for rounds ``[at, until)``."""
        self._check_span(at, until)
        self.add(FaultEvent(round_index=at, kind="drop-node", target=str(node)))
        self.add(FaultEvent(round_index=until, kind="undrop-node", target=str(node)))
        return self

    def drop_link(
        self, sender: str, recipient: str, at: int, until: int
    ) -> "FaultSchedule":
        """Drop the directed ``sender -> recipient`` link for ``[at, until)``."""
        self._check_span(at, until)
        link = (str(sender), str(recipient))
        self.add(FaultEvent(round_index=at, kind="drop-link", link=link))
        self.add(FaultEvent(round_index=until, kind="undrop-link", link=link))
        return self

    def delay(self, extra: float, at: int, until: int) -> "FaultSchedule":
        """Add ``extra`` latency to every delivery for rounds ``[at, until)``."""
        if extra <= 0:
            raise ConfigurationError(f"delay burst must be positive, got {extra}")
        self._check_span(at, until)
        self.add(FaultEvent(round_index=at, kind="delay", extra_delay=float(extra)))
        self.add(FaultEvent(round_index=until, kind="undelay"))
        return self

    def partition(
        self, groups: Sequence[Iterable[str]], at: int, until: int
    ) -> "FaultSchedule":
        """Partition the network into ``groups`` for rounds ``[at, until)``.

        Cross-group messages are dropped; endpoints outside every group stay
        reachable from everywhere.
        """
        self._check_span(at, until)
        frozen = tuple(frozenset(str(n) for n in group) for group in groups)
        if len(frozen) < 2:
            raise ConfigurationError("a partition needs at least two groups")
        self.add(FaultEvent(round_index=at, kind="partition", groups=frozen))
        self.add(FaultEvent(round_index=until, kind="heal"))
        return self

    @staticmethod
    def _check_span(at: int, until: int) -> None:
        if until <= at:
            raise ConfigurationError(
                f"fault burst end {until} must exceed its start {at}"
            )

    # -- randomised schedules -----------------------------------------------------------
    @classmethod
    def random(
        cls,
        rng: np.random.Generator,
        node_ids: Sequence[str],
        num_rounds: int,
        max_concurrent: int = 1,
        fault_probability: float = 0.3,
        min_downtime: int = 1,
        max_downtime: int = 3,
        kinds: Sequence[str] = ("crash",),
    ) -> "FaultSchedule":
        """A seeded random crash/burst schedule with bounded concurrency.

        Walks the rounds; whenever fewer than ``max_concurrent`` nodes are
        currently faulty, with ``fault_probability`` a uniformly chosen
        healthy node goes down for a uniform ``[min_downtime, max_downtime]``
        rounds.  ``kinds`` entries are either ``"crash"`` or a behaviour
        spec (``"corrupt"``, ``"garbage"``, …) applied as a burst.  All
        randomness comes from ``rng``, so the schedule — like everything
        else in the reproduction — is a pure function of its seed.
        """
        if max_concurrent < 1:
            raise ConfigurationError(
                f"max_concurrent must be at least 1, got {max_concurrent}"
            )
        schedule = cls()
        active: list[tuple[int, str]] = []  # (recovery round, node)
        for round_index in range(num_rounds):
            active = [(end, node) for end, node in active if end > round_index]
            busy = {node for _, node in active}
            if len(busy) >= max_concurrent:
                continue
            if rng.random() >= fault_probability:
                continue
            candidates = [node for node in node_ids if node not in busy]
            if not candidates:
                continue
            node = candidates[int(rng.integers(len(candidates)))]
            downtime = int(rng.integers(min_downtime, max_downtime + 1))
            kind = str(kinds[int(rng.integers(len(kinds)))])
            until = round_index + downtime
            if kind == "crash":
                schedule.crash(node, at=round_index, until=until)
            else:
                schedule.behavior(node, kind, at=round_index, until=until)
            active.append((until, node))
        return schedule
