"""Applies a :class:`~repro.faults.schedule.FaultSchedule` to a round backend.

The injector sits between the service's round runner and the backend: it
splits every driven batch at the schedule's event boundaries so each
executed segment sees a constant fault state, applies the due events at
each boundary (behaviour swaps, crash/recover with state transfer, link
switchboard mutations), and keeps the books for the
:class:`~repro.faults.report.FaultReport`.

Events are keyed by the backend's *global* round index (``len(history)``),
so one schedule spans multiple ``drive()`` batches; events beyond the
rounds actually driven stay pending and are counted as such in the report.
Applying events draws no randomness — behaviour swaps are map updates and
the network switchboard is consulted after each delay draw — so an empty
schedule is bit-identical to running without the injector.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.faults.report import FaultReport
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.net.byzantine import CrashedBehavior, behavior_from_name


class FaultInjector:
    """Drives a backend through a schedule of fault transitions.

    ``backend`` must be a round backend (``run_rounds_batched`` plus the
    ``history`` list).  Schedules with node events additionally need the
    behaviour plane (``set_node_behavior`` / ``resync_node`` — the coded
    :class:`~repro.core.protocol.CSMProtocol` has it); schedules with
    network events need ``backend.network.faults`` (a
    :class:`~repro.net.network.NetworkFaultState`).  Capabilities are
    validated eagerly so a mismatched pairing fails at construction, not
    mid-run.
    """

    def __init__(self, backend, schedule: FaultSchedule) -> None:
        if not isinstance(schedule, FaultSchedule):
            raise ConfigurationError(
                f"schedule must be a FaultSchedule, got {type(schedule).__name__}"
            )
        if schedule.has_node_events() and not (
            hasattr(backend, "set_node_behavior") and hasattr(backend, "resync_node")
        ):
            raise ConfigurationError(
                f"{type(backend).__name__} has no node-behaviour plane; "
                "crash/recover and behaviour events need a backend with "
                "set_node_behavior/resync_node (the coded CSMProtocol)"
            )
        if schedule.has_network_events() and self._network_faults(backend) is None:
            raise ConfigurationError(
                f"{type(backend).__name__} has no network fault switchboard; "
                "drop/delay/partition events need backend.network.faults"
            )
        self.backend = backend
        self.schedule = schedule
        self._pending: tuple[FaultEvent, ...] = schedule.events
        self._cursor = 0
        # Original behaviour of each node we overrode (None == honest),
        # captured lazily at first override so recover/restore can undo it.
        self._baseline: dict[str, object] = {}
        self.crashed: set[str] = set()
        self.applied: list[dict[str, object]] = []

    @staticmethod
    def _network_faults(backend):
        network = getattr(backend, "network", None)
        return getattr(network, "faults", None)

    # -- driving ------------------------------------------------------------------------
    def run(
        self,
        runner: Callable[..., list],
        command_batches: Sequence[np.ndarray],
        client_rounds: Sequence[Sequence[str]] | None = None,
    ) -> list:
        """Run ``command_batches`` through ``runner``, injecting due events.

        ``runner`` is the backend's batch entry point
        (``run_rounds_batched`` or ``run_rounds_pipelined``).  The batch is
        split at every pending event's round so events fire exactly at their
        round boundary; segments between boundaries run unbroken, keeping
        the backend's own batching (and its vectorised paths) intact.
        """
        first = len(self.backend.history)
        total = len(command_batches)
        if total == 0:
            return []
        records: list = []
        start = 0
        while start < total:
            self._apply_due(first + start)
            end = total
            if self._cursor < len(self._pending):
                boundary = self._pending[self._cursor].round_index - first
                if boundary < end:
                    end = max(boundary, start + 1)
            segment_clients = (
                None if client_rounds is None else client_rounds[start:end]
            )
            records.extend(
                runner(command_batches[start:end], client_rounds=segment_clients)
            )
            start = end
        return records

    def _apply_due(self, round_index: int) -> None:
        """Apply every pending event scheduled at or before ``round_index``."""
        while (
            self._cursor < len(self._pending)
            and self._pending[self._cursor].round_index <= round_index
        ):
            event = self._pending[self._cursor]
            self._cursor += 1
            self._apply(event)

    # -- event application --------------------------------------------------------------
    def _resolve(self, event: FaultEvent) -> str:
        target = event.target
        if target is None:
            raise ConfigurationError(f"{event.kind} event needs a target node")
        resolver = getattr(self.backend, "resolve_fault_target", None)
        if resolver is not None:
            return resolver(target, event.round_index)
        if target.startswith("@"):
            raise ConfigurationError(
                f"backend {type(self.backend).__name__} cannot resolve the "
                f"adaptive target {target!r}"
            )
        return target

    def _apply(self, event: FaultEvent) -> None:
        if event.kind in ("crash", "behavior"):
            node = self._resolve(event)
            self._baseline.setdefault(node, self.backend.node_behavior(node))
            if event.kind == "crash":
                self.backend.set_node_behavior(node, CrashedBehavior())
                self.crashed.add(node)
            else:
                self.backend.set_node_behavior(node, behavior_from_name(event.spec))
        elif event.kind in ("recover", "restore"):
            node = self._resolve(event)
            self.backend.set_node_behavior(node, self._baseline.pop(node, None))
            # The node's coded row went stale while it was down/misbehaving:
            # a recovery is only complete after the state transfer.
            self.backend.resync_node(node)
            self.crashed.discard(node)
        else:
            faults = self._network_faults(self.backend)
            if event.kind == "drop-node":
                faults.dropped_nodes.add(self._resolve(event))
            elif event.kind == "undrop-node":
                faults.dropped_nodes.discard(self._resolve(event))
            elif event.kind == "drop-link":
                faults.dropped_links.add(event.link)
            elif event.kind == "undrop-link":
                faults.dropped_links.discard(event.link)
            elif event.kind == "delay":
                faults.extra_delay = event.extra_delay
            elif event.kind == "undelay":
                faults.extra_delay = 0.0
            elif event.kind == "partition":
                faults.set_partition(event.groups)
            else:  # "heal" — FaultEvent validated the kind at construction
                faults.set_partition(None)
        self.applied.append(event.describe())

    # -- observability ------------------------------------------------------------------
    def report(self) -> FaultReport:
        """Injected vs. applied events plus the network drop counter."""
        faults = self._network_faults(self.backend)
        return FaultReport(
            injected_events=len(self._pending),
            applied_events=len(self.applied),
            pending_events=len(self._pending) - len(self.applied),
            events=list(self.applied),
            crashed_nodes=sorted(self.crashed),
            dropped_messages=0 if faults is None else faults.dropped_messages,
        )
