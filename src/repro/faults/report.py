"""The fault observability record merged into ``qos_report()``.

One :class:`FaultReport` summarises what the fault plane *injected* (the
schedule's events), what it actually *applied* so far (events beyond the
driven rounds stay pending), and how the self-healing service responded
(retries, recovered tickets, exhausted tickets).  The sharded façade merges
its per-shard reports and appends the shard-health timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class FaultReport:
    """Injected vs. observed fault events plus the service's retry response."""

    injected_events: int = 0
    applied_events: int = 0
    pending_events: int = 0
    events: list[dict[str, object]] = field(default_factory=list)
    crashed_nodes: list[str] = field(default_factory=list)
    dropped_messages: int = 0
    retried_commands: int = 0
    recovered_tickets: int = 0
    exhausted_tickets: int = 0
    retry_backlog: int = 0

    def to_dict(self) -> dict[str, object]:
        """JSON-friendly view, always fully populated (zeroes when idle)."""
        return {
            "injected_events": self.injected_events,
            "applied_events": self.applied_events,
            "pending_events": self.pending_events,
            "events": list(self.events),
            "crashed_nodes": list(self.crashed_nodes),
            "dropped_messages": self.dropped_messages,
            "retried_commands": self.retried_commands,
            "recovered_tickets": self.recovered_tickets,
            "exhausted_tickets": self.exhausted_tickets,
            "retry_backlog": self.retry_backlog,
        }

    @classmethod
    def merge(cls, reports: Iterable["FaultReport"]) -> "FaultReport":
        """Sum counters and concatenate event lists across shards."""
        merged = cls()
        for report in reports:
            merged.injected_events += report.injected_events
            merged.applied_events += report.applied_events
            merged.pending_events += report.pending_events
            merged.events.extend(report.events)
            merged.crashed_nodes.extend(report.crashed_nodes)
            merged.dropped_messages += report.dropped_messages
            merged.retried_commands += report.retried_commands
            merged.recovered_tickets += report.recovered_tickets
            merged.exhausted_tickets += report.exhausted_tickets
            merged.retry_backlog += report.retry_backlog
        merged.crashed_nodes = sorted(set(merged.crashed_nodes))
        return merged
