"""Deterministic fault-injection plane (crash/recovery, bursts, partitions).

The subsystem has three pieces:

* :class:`~repro.faults.schedule.FaultSchedule` — a declarative, composable
  list of fault events keyed by (round, target): crash/recover, Byzantine
  behaviour bursts, message-drop and delay bursts, group partitions, with
  adaptive targets (``"@primary"``, ``"@worker"``) resolved at injection
  time;
* :class:`~repro.faults.injector.FaultInjector` — applies a schedule to a
  round-driving backend at exact round boundaries by splitting each batch
  into constant-fault-state segments;
* :class:`~repro.faults.report.FaultReport` — the observability record
  (injected vs. applied events, retries, recovered tickets) merged into
  ``qos_report()`` and the bench artifacts.

Everything is rng-stream-deterministic: behaviour swaps consume no
randomness, and the network fault switchboard is consulted *after* each
delay draw, so an empty schedule leaves every stream and counter
bit-identical to a run without the fault plane.
"""

from repro.faults.injector import FaultInjector
from repro.faults.report import FaultReport
from repro.faults.schedule import FaultEvent, FaultSchedule

__all__ = ["FaultEvent", "FaultInjector", "FaultReport", "FaultSchedule"]
