"""Dense linear algebra over a finite field.

The Berlekamp–Welch decoder, Vandermonde solves and several INTERMIX
verification checks reduce to solving (possibly singular) linear systems over
``GF(p)``.  Matrices are numpy ``int64`` arrays of canonical field elements;
all elimination is carried out with the field's own arithmetic so the same
routines work for prime and extension fields.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FieldError
from repro.gf.field import Field


def gf_matvec(field: Field, matrix: np.ndarray, vector: np.ndarray) -> np.ndarray:
    """Matrix-vector product over the field: ``matrix @ vector``."""
    mat = field.array(matrix)
    vec = field.array(vector).reshape(-1)
    if mat.ndim != 2 or mat.shape[1] != vec.shape[0]:
        raise FieldError(
            f"shape mismatch for matvec: {mat.shape} @ {vec.shape}"
        )
    out = np.zeros(mat.shape[0], dtype=np.int64)
    for i in range(mat.shape[0]):
        out[i] = field.dot(mat[i, :], vec)
    return out


def gf_matmul(field: Field, a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix-matrix product over the field (delegates to :meth:`Field.matmul`)."""
    return field.matmul(a, b)


def _row_reduce(
    field: Field, augmented: np.ndarray
) -> tuple[np.ndarray, list[int]]:
    """Gauss–Jordan elimination; returns the reduced matrix and pivot columns."""
    mat = field.array(augmented).copy()
    rows, cols = mat.shape
    pivot_cols: list[int] = []
    pivot_row = 0
    for col in range(cols):
        if pivot_row >= rows:
            break
        pivot = None
        for r in range(pivot_row, rows):
            if mat[r, col] != 0:
                pivot = r
                break
        if pivot is None:
            continue
        if pivot != pivot_row:
            mat[[pivot_row, pivot], :] = mat[[pivot, pivot_row], :]
        inv_val = field.inv(int(mat[pivot_row, col]))
        mat[pivot_row, :] = field.mul(mat[pivot_row, :], inv_val)
        for r in range(rows):
            if r != pivot_row and mat[r, col] != 0:
                factor = int(mat[r, col])
                mat[r, :] = field.sub(mat[r, :], field.mul(mat[pivot_row, :], factor))
        pivot_cols.append(col)
        pivot_row += 1
    return mat, pivot_cols


def gf_rank(field: Field, matrix: np.ndarray) -> int:
    """Rank of a matrix over the field."""
    _, pivots = _row_reduce(field, field.array(matrix))
    return len(pivots)


def gf_solve(
    field: Field, matrix: np.ndarray, rhs: np.ndarray, allow_underdetermined: bool = False
) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` over the field.

    Raises :class:`FieldError` if the system is inconsistent.  If the system
    is under-determined, free variables are set to zero when
    ``allow_underdetermined`` is true; otherwise an error is raised.
    """
    mat = field.array(matrix)
    vec = field.array(rhs).reshape(-1)
    if mat.ndim != 2 or mat.shape[0] != vec.shape[0]:
        raise FieldError(f"shape mismatch for solve: {mat.shape}, rhs {vec.shape}")
    augmented = np.concatenate([mat, vec.reshape(-1, 1)], axis=1)
    reduced, pivots = _row_reduce(field, augmented)
    num_cols = mat.shape[1]
    # Inconsistency: a pivot in the augmented column.
    if num_cols in pivots:
        raise FieldError("linear system is inconsistent")
    if len(pivots) < num_cols and not allow_underdetermined:
        raise FieldError("linear system is under-determined")
    solution = np.zeros(num_cols, dtype=np.int64)
    for row_index, col in enumerate(pivots):
        solution[col] = reduced[row_index, num_cols]
    return solution


def gf_inverse_matrix(field: Field, matrix: np.ndarray) -> np.ndarray:
    """Inverse of a square matrix over the field."""
    mat = field.array(matrix)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise FieldError(f"matrix inverse requires a square matrix, got {mat.shape}")
    n = mat.shape[0]
    identity = np.eye(n, dtype=np.int64)
    augmented = np.concatenate([mat, identity], axis=1)
    reduced, pivots = _row_reduce(field, augmented)
    if pivots != list(range(n)):
        raise FieldError("matrix is singular over the field")
    return reduced[:, n:]


def gf_nullspace_vector(field: Field, matrix: np.ndarray) -> np.ndarray | None:
    """Return one non-zero vector in the nullspace of ``matrix``, or ``None``.

    Used by tests to probe singular Vandermonde-like systems.
    """
    mat = field.array(matrix)
    reduced, pivots = _row_reduce(field, mat)
    num_cols = mat.shape[1]
    free_cols = [c for c in range(num_cols) if c not in pivots]
    if not free_cols:
        return None
    free = free_cols[0]
    vector = np.zeros(num_cols, dtype=np.int64)
    vector[free] = 1
    for row_index, col in enumerate(pivots):
        vector[col] = field.neg(int(reduced[row_index, free]))
    return vector
