"""Vandermonde-matrix helpers.

The centralised decoding path of Section 6.2 expresses both the multi-point
evaluation of the decoded polynomial (equation (8)) and the consistency check
of the decoded coefficients (equation (9)) as matrix–vector products with
Vandermonde matrices ``[x_i ** j]``.  INTERMIX verifies exactly these
products, so the experiments need explicit access to the matrices.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import FieldError
from repro.gf.field import Field
from repro.gf.linalg import gf_matvec, gf_solve


def vandermonde_matrix(
    field: Field, points: Sequence[int], num_columns: int
) -> np.ndarray:
    """The matrix ``V[i, j] = points[i] ** j`` for ``j = 0..num_columns-1``."""
    if num_columns <= 0:
        raise FieldError(f"Vandermonde matrix needs at least one column, got {num_columns}")
    pts = [field.element(int(p)) for p in points]
    matrix = np.zeros((len(pts), num_columns), dtype=np.int64)
    for i, point in enumerate(pts):
        acc = field.one
        for j in range(num_columns):
            matrix[i, j] = acc
            acc = field.mul(acc, point)
    return matrix


def vandermonde_apply(
    field: Field, points: Sequence[int], coefficients: np.ndarray
) -> np.ndarray:
    """Evaluate the polynomial with the given coefficient vector at ``points``.

    Equivalent to ``vandermonde_matrix(...) @ coefficients`` but computed with
    Horner's rule, which is how an individual node would evaluate it.
    """
    coeffs = field.array(coefficients).reshape(-1)
    out = np.zeros(len(points), dtype=np.int64)
    for i, point in enumerate(points):
        acc = 0
        for c in coeffs[::-1]:
            acc = field.add(field.mul(acc, field.element(int(point))), int(c))
        out[i] = acc
    return out


def vandermonde_solve(
    field: Field, points: Sequence[int], values: np.ndarray
) -> np.ndarray:
    """Solve ``V @ coeffs = values`` for the coefficient vector.

    ``points`` must be distinct and ``len(points)`` equals the number of
    unknown coefficients; this is interpolation phrased as a linear solve and
    is used as a cross-check of the Lagrange interpolation path.
    """
    pts = [field.element(int(p)) for p in points]
    if len(set(pts)) != len(pts):
        raise FieldError("Vandermonde solve requires distinct points")
    vals = field.array(values).reshape(-1)
    if vals.shape[0] != len(pts):
        raise FieldError(
            f"point/value count mismatch: {len(pts)} points, {vals.shape[0]} values"
        )
    matrix = vandermonde_matrix(field, pts, len(pts))
    return gf_solve(field, matrix, vals)


def vandermonde_residual(
    field: Field,
    points: Sequence[int],
    coefficients: np.ndarray,
    values: np.ndarray,
) -> np.ndarray:
    """Return ``V @ coefficients - values`` (zero where consistent).

    Auditors use the non-zero positions of this residual to decide which row
    of a claimed product to challenge.
    """
    matrix = vandermonde_matrix(field, points, field.array(coefficients).reshape(-1).shape[0])
    predicted = gf_matvec(field, matrix, coefficients)
    return field.sub(predicted, field.array(values).reshape(-1))
