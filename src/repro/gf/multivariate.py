"""Sparse multivariate polynomials over a finite field.

CSM supports state-transition functions that are multivariate polynomials of
constant total degree ``d`` in the components of the state and the input
command.  This module provides the representation of such functions, plus the
operation CSM's correctness proof relies on: substituting a univariate
polynomial for every variable (``h(z) = f(u(z), v(z))``) and obtaining a
univariate polynomial of degree at most ``d * (K - 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import FieldError
from repro.gf.field import Field
from repro.gf.polynomial import Poly


@dataclass(frozen=True)
class Monomial:
    """A single term ``coefficient * prod(x_i ** exponents[i])``."""

    exponents: tuple[int, ...]
    coefficient: int

    @property
    def total_degree(self) -> int:
        return sum(self.exponents)


class MultivariatePolynomial:
    """A polynomial in ``arity`` variables with coefficients in ``field``.

    Terms are stored sparsely as a mapping from exponent tuples to non-zero
    coefficients.  The class is immutable in spirit: arithmetic operations
    return new instances.
    """

    __slots__ = ("field", "arity", "terms")

    def __init__(
        self,
        field: Field,
        arity: int,
        terms: Mapping[tuple[int, ...], int] | Iterable[tuple[tuple[int, ...], int]] = (),
    ) -> None:
        if arity < 0:
            raise FieldError(f"arity must be non-negative, got {arity}")
        self.field = field
        self.arity = int(arity)
        normalized: dict[tuple[int, ...], int] = {}
        items = terms.items() if isinstance(terms, Mapping) else terms
        for exponents, coefficient in items:
            exps = tuple(int(e) for e in exponents)
            if len(exps) != arity:
                raise FieldError(
                    f"exponent tuple {exps} does not match arity {arity}"
                )
            if any(e < 0 for e in exps):
                raise FieldError(f"negative exponent in {exps}")
            coeff = field.element(int(coefficient))
            if coeff == 0:
                continue
            if exps in normalized:
                coeff = field.add(normalized[exps], coeff)
                if coeff == 0:
                    del normalized[exps]
                    continue
            normalized[exps] = coeff
        self.terms = normalized

    # -- constructors ----------------------------------------------------------------
    @classmethod
    def zero(cls, field: Field, arity: int) -> "MultivariatePolynomial":
        return cls(field, arity, {})

    @classmethod
    def constant(cls, field: Field, arity: int, value: int) -> "MultivariatePolynomial":
        return cls(field, arity, {tuple([0] * arity): value})

    @classmethod
    def variable(cls, field: Field, arity: int, index: int) -> "MultivariatePolynomial":
        """The polynomial ``x_index``."""
        if not 0 <= index < arity:
            raise FieldError(f"variable index {index} out of range for arity {arity}")
        exponents = [0] * arity
        exponents[index] = 1
        return cls(field, arity, {tuple(exponents): 1})

    @classmethod
    def from_monomials(
        cls, field: Field, arity: int, monomials: Sequence[Monomial]
    ) -> "MultivariatePolynomial":
        return cls(field, arity, [(m.exponents, m.coefficient) for m in monomials])

    @classmethod
    def random(
        cls,
        field: Field,
        arity: int,
        total_degree: int,
        rng: np.random.Generator,
        term_count: int = 8,
    ) -> "MultivariatePolynomial":
        """A random polynomial of total degree exactly ``total_degree``."""
        terms: dict[tuple[int, ...], int] = {}
        # Guarantee at least one term of full degree.
        top = [0] * arity
        remaining = total_degree
        for i in range(arity):
            take = int(rng.integers(0, remaining + 1)) if i < arity - 1 else remaining
            top[i] = take
            remaining -= take
        terms[tuple(top)] = field.random_nonzero(rng)
        for _ in range(term_count - 1):
            exps = [0] * arity
            budget = int(rng.integers(0, total_degree + 1))
            for i in range(arity):
                take = int(rng.integers(0, budget + 1))
                exps[i] = take
                budget -= take
                if budget <= 0:
                    break
            key = tuple(exps)
            coeff = field.random_element(rng)
            if key in terms:
                coeff = field.add(terms[key], coeff)
            if coeff != 0:
                terms[key] = coeff
        return cls(field, arity, terms)

    # -- queries ----------------------------------------------------------------------
    @property
    def total_degree(self) -> int:
        """Maximum total degree over all terms; ``0`` for constants and zero."""
        if not self.terms:
            return 0
        return max(sum(exps) for exps in self.terms)

    @property
    def is_zero(self) -> bool:
        return not self.terms

    def monomials(self) -> list[Monomial]:
        return [Monomial(exps, coeff) for exps, coeff in sorted(self.terms.items())]

    def coefficient(self, exponents: Sequence[int]) -> int:
        return self.terms.get(tuple(int(e) for e in exponents), 0)

    # -- arithmetic ----------------------------------------------------------------------
    def _check_compatible(self, other: "MultivariatePolynomial") -> None:
        if self.field != other.field or self.arity != other.arity:
            raise FieldError("incompatible multivariate polynomials")

    def __add__(self, other: "MultivariatePolynomial") -> "MultivariatePolynomial":
        self._check_compatible(other)
        terms = dict(self.terms)
        field = self.field
        for exps, coeff in other.terms.items():
            merged = field.add(terms.get(exps, 0), coeff)
            if merged == 0:
                terms.pop(exps, None)
            else:
                terms[exps] = merged
        return MultivariatePolynomial(field, self.arity, terms)

    def __sub__(self, other: "MultivariatePolynomial") -> "MultivariatePolynomial":
        return self + other.scale(self.field.neg(1))

    def __mul__(self, other: "MultivariatePolynomial") -> "MultivariatePolynomial":
        self._check_compatible(other)
        field = self.field
        terms: dict[tuple[int, ...], int] = {}
        for exps_a, coeff_a in self.terms.items():
            for exps_b, coeff_b in other.terms.items():
                exps = tuple(a + b for a, b in zip(exps_a, exps_b))
                coeff = field.mul(coeff_a, coeff_b)
                merged = field.add(terms.get(exps, 0), coeff)
                if merged == 0:
                    terms.pop(exps, None)
                else:
                    terms[exps] = merged
        return MultivariatePolynomial(field, self.arity, terms)

    def scale(self, scalar: int) -> "MultivariatePolynomial":
        field = self.field
        scalar = field.element(scalar)
        terms = {
            exps: field.mul(coeff, scalar)
            for exps, coeff in self.terms.items()
            if field.mul(coeff, scalar) != 0
        }
        return MultivariatePolynomial(field, self.arity, terms)

    # -- evaluation -----------------------------------------------------------------------
    def evaluate(self, assignment: Sequence[int]) -> int:
        """Evaluate at a point given as a sequence of ``arity`` field elements."""
        if len(assignment) != self.arity:
            raise FieldError(
                f"assignment of length {len(assignment)} does not match arity {self.arity}"
            )
        field = self.field
        values = [field.element(int(v)) for v in assignment]
        result = 0
        for exps, coeff in self.terms.items():
            term = coeff
            for value, exponent in zip(values, exps):
                if exponent:
                    term = field.mul(term, field.pow(value, exponent))
            result = field.add(result, term)
        return result

    def evaluate_batch(self, assignments: np.ndarray) -> np.ndarray:
        """Evaluate at many points.

        ``assignments`` has shape ``(num_points, arity)``; the result has
        shape ``(num_points,)``.
        """
        field = self.field
        points = field.array(assignments)
        if points.ndim != 2 or points.shape[1] != self.arity:
            raise FieldError(
                f"expected assignments of shape (n, {self.arity}), got {points.shape}"
            )
        return self._evaluate_batch_canonical(points)

    def _evaluate_batch_canonical(self, points: np.ndarray) -> np.ndarray:
        """Evaluate at canonical points, with per-variable power caching.

        Variable powers are computed once per ``(variable, exponent)`` pair
        and shared across terms; linear and quadratic exponents skip the
        square-and-multiply ladder entirely.  Every shortcut explicitly
        charges the operations the :meth:`Field.pow` formulation it replaces
        would have charged, so attached counters record bit-identical counts
        to the scalar :meth:`evaluate` loop.
        """
        field = self.field
        n = points.shape[0]
        result = np.zeros(n, dtype=np.int64)
        powers: dict[tuple[int, int], np.ndarray] = {}
        for exps, coeff in self.terms.items():
            term = np.full(n, coeff, dtype=np.int64)
            for index, exponent in enumerate(exps):
                if not exponent:
                    continue
                key = (index, exponent)
                values = powers.get(key)
                if values is None:
                    if exponent == 1:
                        values = points[:, index]
                        field._count_mul(2 * n)
                    elif exponent == 2:
                        column = points[:, index]
                        values = field.mul(column, column)  # charges n
                        field._count_mul(3 * n)
                    else:
                        values = field.pow(points[:, index], exponent)
                    powers[key] = values
                else:
                    field._count_mul(2 * max(exponent.bit_length(), 1) * n)
                term = field.mul(term, values)
            result = field.add(result, term)
        return result

    def compose_univariate(self, inner: Sequence[Poly]) -> Poly:
        """Substitute a univariate polynomial for every variable.

        Given ``inner = [p_0(z), ..., p_{arity-1}(z)]``, returns the univariate
        polynomial ``self(p_0(z), ..., p_{arity-1}(z))``.  This is exactly the
        composite polynomial ``h(z) = f(u(z), v(z))`` that CSM's decoding step
        interpolates, with degree at most ``total_degree * max_i deg(p_i)``.
        """
        if len(inner) != self.arity:
            raise FieldError(
                f"expected {self.arity} inner polynomials, got {len(inner)}"
            )
        field = self.field
        for poly in inner:
            if poly.field != field:
                raise FieldError("inner polynomial over a different field")
        result = Poly.zero(field)
        for exps, coeff in self.terms.items():
            term = Poly.constant(field, coeff)
            for poly, exponent in zip(inner, exps):
                for _ in range(exponent):
                    term = term * poly
            result = result + term
        return result

    def partial_degree(self, index: int) -> int:
        """Maximum exponent of variable ``index`` across all terms."""
        if not 0 <= index < self.arity:
            raise FieldError(f"variable index {index} out of range")
        if not self.terms:
            return 0
        return max(exps[index] for exps in self.terms)

    # -- dunder ------------------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultivariatePolynomial):
            return NotImplemented
        return (
            self.field == other.field
            and self.arity == other.arity
            and self.terms == other.terms
        )

    def __hash__(self) -> int:
        return hash((self.field, self.arity, tuple(sorted(self.terms.items()))))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        if not self.terms:
            return "MultivariatePolynomial(0)"
        parts = []
        for exps, coeff in sorted(self.terms.items()):
            factors = [str(coeff)]
            for i, e in enumerate(exps):
                if e == 1:
                    factors.append(f"x{i}")
                elif e > 1:
                    factors.append(f"x{i}^{e}")
            parts.append("*".join(factors))
        return "MultivariatePolynomial(" + " + ".join(parts) + ")"
