"""Abstract finite-field interface and field-operation accounting.

The throughput metric of the paper (Section 2.2) is defined directly in terms
of the number of additions and multiplications performed in the field ``F``.
To reproduce it we thread an optional :class:`OperationCounter` through every
field so that higher layers (execution phase, coding, INTERMIX) can report
exactly how many field operations each node performed.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Sequence, TypeAlias

import numpy as np

from repro.exceptions import FieldError

#: Scalars and numpy arrays of canonical field elements — the common
#: currency of every arithmetic method below.
ArrayLike: TypeAlias = "np.ndarray | int | Sequence[int]"


@dataclass
class OperationCounter:
    """Counts field additions and multiplications.

    Vectorised operations on arrays of ``n`` elements count as ``n`` scalar
    operations, matching the paper's "operation counts in F" convention.
    Inversions are counted separately; when an inversion is implemented via
    Fermat exponentiation it is *also* reported as ``2 * log2(p)``
    multiplications so complexity comparisons remain honest.
    """

    additions: int = 0
    multiplications: int = 0
    inversions: int = 0
    labels: dict[str, int] = field(default_factory=dict)

    def add(self, n: int = 1) -> None:
        self.additions += int(n)

    def mul(self, n: int = 1) -> None:
        self.multiplications += int(n)

    def inv(self, n: int = 1, mul_equivalent: int = 0) -> None:
        self.inversions += int(n)
        self.multiplications += int(mul_equivalent)

    def tag(self, label: str, n: int = 1) -> None:
        """Attribute ``n`` operations to a named phase (for reporting only)."""
        self.labels[label] = self.labels.get(label, 0) + int(n)

    @property
    def total(self) -> int:
        """Total additions plus multiplications (the paper's ``c(.)``)."""
        return self.additions + self.multiplications

    def reset(self) -> None:
        self.additions = 0
        self.multiplications = 0
        self.inversions = 0
        self.labels = {}

    def snapshot(self) -> dict[str, int]:
        return {
            "additions": self.additions,
            "multiplications": self.multiplications,
            "inversions": self.inversions,
            "total": self.total,
        }

    def merge(self, other: "OperationCounter") -> None:
        self.additions += other.additions
        self.multiplications += other.multiplications
        self.inversions += other.inversions
        for key, value in other.labels.items():
            self.labels[key] = self.labels.get(key, 0) + value

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"OperationCounter(add={self.additions}, mul={self.multiplications}, "
            f"inv={self.inversions})"
        )


class Field(ABC):
    """Abstract interface shared by :class:`PrimeField` and ``GF(2**m)``.

    Elements are represented as canonical Python integers (or numpy integer
    arrays for the vectorised prime-field operations).  All methods accept
    and return these canonical representations; they never wrap elements in
    per-element objects, which keeps the vectorised paths fast.
    """

    #: Optional counter; when set, arithmetic methods record operation counts.
    counter: OperationCounter | None

    def __init__(self) -> None:
        self.counter = None

    # -- construction -----------------------------------------------------
    def attach_counter(self, counter: OperationCounter | None) -> None:
        """Attach (or detach, with ``None``) an operation counter."""
        self.counter = counter

    # -- basic properties --------------------------------------------------
    @property
    @abstractmethod
    def order(self) -> int:
        """Number of elements in the field."""

    @property
    @abstractmethod
    def characteristic(self) -> int:
        """The field characteristic (``p`` for ``GF(p)``, ``2`` for ``GF(2**m)``)."""

    @property
    def zero(self) -> int:
        return 0

    @property
    def one(self) -> int:
        return 1

    # -- element handling ---------------------------------------------------
    @abstractmethod
    def element(self, value: int) -> int:
        """Return the canonical representative of ``value`` in the field."""

    @abstractmethod
    def array(self, values: "Iterable[int] | np.ndarray") -> np.ndarray:
        """Return a canonical numpy array of field elements."""

    def is_element(self, value: int) -> bool:
        return 0 <= int(value) < self.order

    # -- arithmetic ---------------------------------------------------------
    @abstractmethod
    def add(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Element-wise addition; accepts scalars or numpy arrays."""

    @abstractmethod
    def sub(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Element-wise subtraction; accepts scalars or numpy arrays."""

    @abstractmethod
    def mul(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Element-wise multiplication; accepts scalars or numpy arrays."""

    @abstractmethod
    def neg(self, a: ArrayLike) -> ArrayLike:
        """Element-wise additive inverse."""

    @abstractmethod
    def inv(self, a: ArrayLike) -> ArrayLike:
        """Element-wise multiplicative inverse; raises on zero."""

    @abstractmethod
    def pow(self, a: ArrayLike, exponent: int) -> ArrayLike:
        """Element-wise exponentiation by a non-negative integer."""

    def div(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        """Element-wise division ``a / b``."""
        return self.mul(a, self.inv(b))

    # -- batch helpers -------------------------------------------------------
    def batch_inv(self, values: np.ndarray) -> np.ndarray:
        """Invert many elements with a single inversion (Montgomery's trick).

        Computes prefix products, inverts the full product once and unwinds.
        Requires every entry to be non-zero.
        """
        arr = self.array(values)
        flat = arr.reshape(-1)
        n = flat.shape[0]
        if n == 0:
            return arr.copy()
        prefix = np.empty(n, dtype=flat.dtype)
        acc = self.one
        for i in range(n):
            value = int(flat[i])
            if value == 0:
                raise FieldError("cannot batch-invert an array containing zero")
            acc = self.mul(acc, value)
            prefix[i] = acc
        inv_acc = self.inv(acc)
        out = np.empty(n, dtype=flat.dtype)
        for i in range(n - 1, -1, -1):
            if i == 0:
                out[i] = inv_acc
            else:
                out[i] = self.mul(inv_acc, int(prefix[i - 1]))
            inv_acc = self.mul(inv_acc, int(flat[i]))
        return out.reshape(arr.shape)

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix–matrix product over the field.

        The generic implementation runs row-by-column :meth:`dot` products;
        subclasses with vectorised arithmetic (see
        :meth:`repro.gf.prime_field.PrimeField.matmul`) override it with a
        numpy formulation that performs the identical field operations (and
        charges the identical operation counts) without per-element Python
        dispatch.  This is the workhorse of the batched coded-round pipeline.
        """
        a_arr = self.array(a)
        b_arr = self.array(b)
        if a_arr.ndim != 2 or b_arr.ndim != 2 or a_arr.shape[1] != b_arr.shape[0]:
            raise FieldError(
                f"shape mismatch for matmul: {a_arr.shape} @ {b_arr.shape}"
            )
        out = np.zeros((a_arr.shape[0], b_arr.shape[1]), dtype=np.int64)
        for i in range(a_arr.shape[0]):
            for j in range(b_arr.shape[1]):
                out[i, j] = self.dot(a_arr[i, :], b_arr[:, j])
        return out

    def dot(self, a: np.ndarray, b: np.ndarray) -> int:
        """Inner product of two equal-length vectors of field elements."""
        a_arr = self.array(a)
        b_arr = self.array(b)
        if a_arr.shape != b_arr.shape:
            raise FieldError(
                f"dot product requires equal shapes, got {a_arr.shape} and {b_arr.shape}"
            )
        products = self.mul(a_arr, b_arr)
        return self.sum(products)

    def sum(self, values: ArrayLike) -> int:
        """Sum of a vector of field elements."""
        arr = self.array(values).reshape(-1)
        if arr.size == 0:
            return self.zero
        total = int(arr[0])
        for value in arr[1:]:
            total = int(self.add(total, int(value)))
        return total

    # -- sampling -------------------------------------------------------------
    def random_element(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.order))

    def random_nonzero(self, rng: np.random.Generator) -> int:
        return int(rng.integers(1, self.order))

    def random_array(
        self, rng: np.random.Generator, shape: int | tuple[int, ...]
    ) -> np.ndarray:
        return self.array(rng.integers(0, self.order, size=shape, dtype=np.int64))

    def distinct_points(self, count: int, start: int = 1) -> list[int]:
        """Return ``count`` distinct field elements, deterministic and simple.

        CSM only requires the evaluation points ``omega_1..omega_K`` and
        ``alpha_1..alpha_N`` to be distinct; consecutive integers starting at
        ``start`` satisfy that whenever ``start + count <= order``.
        """
        if start + count > self.order:
            raise FieldError(
                f"field of order {self.order} cannot provide {count} distinct "
                f"points starting at {start}"
            )
        return [self.element(start + i) for i in range(count)]

    # -- counting hooks --------------------------------------------------------
    def _count_add(self, n: int) -> None:
        if self.counter is not None:
            self.counter.add(n)

    def _count_mul(self, n: int) -> None:
        if self.counter is not None:
            self.counter.mul(n)

    def _count_inv(self, n: int, mul_equivalent: int = 0) -> None:
        if self.counter is not None:
            self.counter.inv(n, mul_equivalent=mul_equivalent)

    @staticmethod
    def _size_of(a: ArrayLike, b: ArrayLike | None = None) -> int:
        """Number of scalar operations represented by an element-wise op."""
        size_a = a.size if isinstance(a, np.ndarray) else 1
        size_b = b.size if isinstance(b, np.ndarray) else 1
        return max(size_a, size_b)

    # -- misc -------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, Field) and type(self) is type(other) and self.order == other.order

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.order))
