"""Binary extension fields ``GF(2**m)`` for the Appendix A embedding.

The paper's Appendix A shows how to run CSM on Boolean state machines whose
natural field, ``GF(2)``, is too small to host ``N`` distinct evaluation
points: every bit is embedded into ``GF(2**m)`` with ``2**m >= N`` and the
polynomial state transition is evaluated in the extension field.

Elements are represented as integers in ``[0, 2**m)`` whose binary expansion
gives the coefficients of a polynomial over ``GF(2)``; multiplication is
carry-less multiplication followed by reduction modulo a fixed irreducible
polynomial.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.exceptions import FieldError
from repro.gf.field import ArrayLike, Field

#: Irreducible polynomials over GF(2) for each supported extension degree,
#: given as integer bit masks including the leading term.  E.g. m=8 uses
#: x^8 + x^4 + x^3 + x + 1 = 0b1_0001_1011 (the AES polynomial).
IRREDUCIBLE_POLYNOMIALS: dict[int, int] = {
    1: 0b11,
    2: 0b111,
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10000011,
    8: 0b100011011,
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
    13: 0b10000000011011,
    14: 0b100010101000011,
    15: 0b1000000000000011,
    16: 0b10001000000001011,
}


class BinaryExtensionField(Field):
    """The field ``GF(2**m)`` for ``1 <= m <= 16``.

    Scalar arithmetic is implemented with integer bit operations; vector
    inputs (numpy arrays) are processed element-wise.  The sizes involved in
    the Appendix A experiments (``m = ceil(log2 N)``) are small, so the
    Python-level loops are not a bottleneck.
    """

    def __init__(self, degree: int) -> None:
        super().__init__()
        degree = int(degree)
        if degree not in IRREDUCIBLE_POLYNOMIALS:
            raise FieldError(
                f"GF(2**m) is supported for 1 <= m <= 16, got m={degree}"
            )
        self._m = degree
        self._modulus_poly = IRREDUCIBLE_POLYNOMIALS[degree]
        self._order = 1 << degree

    # -- properties ------------------------------------------------------------
    @property
    def order(self) -> int:
        return self._order

    @property
    def characteristic(self) -> int:
        return 2

    @property
    def degree(self) -> int:
        return self._m

    @property
    def modulus_polynomial(self) -> int:
        return self._modulus_poly

    # -- element handling ---------------------------------------------------------
    def element(self, value: int) -> int:
        return int(value) & (self._order - 1)

    def array(self, values: Iterable[int] | np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.int64)
        return np.bitwise_and(arr, self._order - 1)

    def embed_bit(self, bit: int) -> int:
        """Appendix A embedding of a ``GF(2)`` element into ``GF(2**m)``.

        ``0`` maps to the all-zero word and ``1`` maps to ``0...01`` (the
        multiplicative identity), so polynomial values are preserved.
        """
        bit = int(bit)
        if bit not in (0, 1):
            raise FieldError(f"embed_bit expects a bit, got {bit}")
        return bit

    def project_bit(self, value: int) -> int:
        """Inverse of :meth:`embed_bit` for values that are valid embeddings."""
        value = self.element(value)
        if value not in (0, 1):
            raise FieldError(
                f"value {value} is not the embedding of a GF(2) element"
            )
        return value

    # -- scalar kernels --------------------------------------------------------------
    def _mul_scalar(self, a: int, b: int) -> int:
        a = self.element(a)
        b = self.element(b)
        result = 0
        while b:
            if b & 1:
                result ^= a
            b >>= 1
            a <<= 1
            if a & self._order:
                a ^= self._modulus_poly
        return result

    def _inv_scalar(self, a: int) -> int:
        a = self.element(a)
        if a == 0:
            raise FieldError("cannot invert zero element of GF(2**m)")
        # Fermat: a^(2^m - 2)
        return self._pow_scalar(a, self._order - 2)

    def _pow_scalar(self, a: int, exponent: int) -> int:
        a = self.element(a)
        result = 1
        e = int(exponent)
        while e > 0:
            if e & 1:
                result = self._mul_scalar(result, a)
            a = self._mul_scalar(a, a)
            e >>= 1
        return result

    # -- arithmetic -------------------------------------------------------------------
    def add(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        self._count_add(self._size_of(a, b))
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np.bitwise_xor(self.array(a), self.array(b))
        return self.element(a) ^ self.element(b)

    def sub(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        # Characteristic 2: subtraction is addition.
        return self.add(a, b)

    def neg(self, a: ArrayLike) -> ArrayLike:
        self._count_add(self._size_of(a))
        if isinstance(a, np.ndarray):
            return self.array(a)
        return self.element(a)

    def mul(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        self._count_mul(self._size_of(a, b))
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            a_arr = np.broadcast_to(self.array(a), np.broadcast_shapes(np.shape(a), np.shape(b)))
            b_arr = np.broadcast_to(self.array(b), a_arr.shape)
            flat = [
                self._mul_scalar(int(x), int(y))
                for x, y in zip(a_arr.reshape(-1), b_arr.reshape(-1))
            ]
            return np.asarray(flat, dtype=np.int64).reshape(a_arr.shape)
        return self._mul_scalar(int(a), int(b))

    def inv(self, a: ArrayLike) -> ArrayLike:
        bits = self._m
        if isinstance(a, np.ndarray):
            self._count_inv(a.size, mul_equivalent=2 * bits * a.size)
            flat = [self._inv_scalar(int(x)) for x in self.array(a).reshape(-1)]
            return np.asarray(flat, dtype=np.int64).reshape(np.shape(a))
        self._count_inv(1, mul_equivalent=2 * bits)
        return self._inv_scalar(int(a))

    def pow(self, a: ArrayLike, exponent: int) -> ArrayLike:
        exponent = int(exponent)
        if exponent < 0:
            return self.pow(self.inv(a), -exponent)
        if isinstance(a, np.ndarray):
            self._count_mul(2 * max(exponent.bit_length(), 1) * a.size)
            flat = [self._pow_scalar(int(x), exponent) for x in self.array(a).reshape(-1)]
            return np.asarray(flat, dtype=np.int64).reshape(np.shape(a))
        self._count_mul(2 * max(exponent.bit_length(), 1))
        return self._pow_scalar(int(a), exponent)

    # -- helpers ------------------------------------------------------------------------
    @classmethod
    def for_network_size(cls, network_size: int) -> "BinaryExtensionField":
        """Smallest ``GF(2**m)`` with at least ``network_size + 1`` elements.

        The ``+ 1`` leaves room for the evaluation points to avoid zero if a
        caller wants that; Appendix A only requires ``2**m >= N``.
        """
        m = 1
        while (1 << m) < network_size + 1:
            m += 1
        return cls(m)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"BinaryExtensionField(2**{self._m})"
