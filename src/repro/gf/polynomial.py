"""Dense univariate polynomials over a finite field.

These polynomials are the work-horse of the coding layer: Lagrange
interpolants, Reed–Solomon message/locator polynomials and the composite
polynomial ``h(z) = f(u(z), v(z))`` of the coded execution phase are all
instances of :class:`Poly`.

Coefficients are stored low-degree first as canonical field elements (Python
ints).  The zero polynomial is represented by an empty coefficient list and
has degree ``-1`` by convention.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import FieldError
from repro.gf.field import Field


class Poly:
    """A univariate polynomial ``c_0 + c_1 z + ... + c_n z**n`` over ``field``."""

    __slots__ = ("field", "coeffs")

    def __init__(self, field: Field, coefficients: Iterable[int] = ()) -> None:
        self.field = field
        coeffs = [field.element(int(c)) for c in coefficients]
        while coeffs and coeffs[-1] == 0:
            coeffs.pop()
        self.coeffs = coeffs

    # -- constructors ------------------------------------------------------------
    @classmethod
    def zero(cls, field: Field) -> "Poly":
        return cls(field, [])

    @classmethod
    def one(cls, field: Field) -> "Poly":
        return cls(field, [1])

    @classmethod
    def constant(cls, field: Field, value: int) -> "Poly":
        return cls(field, [value])

    @classmethod
    def monomial(cls, field: Field, degree: int, coefficient: int = 1) -> "Poly":
        if degree < 0:
            raise FieldError(f"monomial degree must be non-negative, got {degree}")
        coeffs = [0] * degree + [coefficient]
        return cls(field, coeffs)

    @classmethod
    def x(cls, field: Field) -> "Poly":
        return cls.monomial(field, 1)

    @classmethod
    def from_roots(cls, field: Field, roots: Sequence[int]) -> "Poly":
        """The monic polynomial ``prod (z - r)`` over the given roots."""
        result = cls.one(field)
        for root in roots:
            result = result * cls(field, [field.neg(root), 1])
        return result

    @classmethod
    def random(cls, field: Field, degree: int, rng: np.random.Generator) -> "Poly":
        """A uniformly random polynomial of exactly the given degree."""
        if degree < 0:
            return cls.zero(field)
        coeffs = [field.random_element(rng) for _ in range(degree)]
        coeffs.append(field.random_nonzero(rng))
        return cls(field, coeffs)

    # -- basic queries -------------------------------------------------------------
    @property
    def degree(self) -> int:
        """Degree of the polynomial; ``-1`` for the zero polynomial."""
        return len(self.coeffs) - 1

    @property
    def is_zero(self) -> bool:
        return not self.coeffs

    def coefficient(self, power: int) -> int:
        """Coefficient of ``z**power`` (zero if above the degree)."""
        if power < 0:
            raise FieldError(f"coefficient power must be non-negative, got {power}")
        if power >= len(self.coeffs):
            return 0
        return self.coeffs[power]

    def leading_coefficient(self) -> int:
        if self.is_zero:
            return 0
        return self.coeffs[-1]

    def coefficient_array(self, length: int | None = None) -> np.ndarray:
        """Coefficients as a numpy array, optionally zero-padded to ``length``."""
        size = len(self.coeffs) if length is None else length
        if size < len(self.coeffs):
            raise FieldError(
                f"requested length {size} shorter than polynomial with "
                f"{len(self.coeffs)} coefficients"
            )
        arr = np.zeros(size, dtype=np.int64)
        if self.coeffs:
            arr[: len(self.coeffs)] = self.coeffs
        return arr

    # -- arithmetic ---------------------------------------------------------------------
    def _check_same_field(self, other: "Poly") -> None:
        if self.field != other.field:
            raise FieldError("cannot combine polynomials over different fields")

    def __add__(self, other: "Poly") -> "Poly":
        self._check_same_field(other)
        field = self.field
        size = max(len(self.coeffs), len(other.coeffs))
        coeffs = []
        for i in range(size):
            coeffs.append(field.add(self.coefficient(i), other.coefficient(i)))
        return Poly(field, coeffs)

    def __sub__(self, other: "Poly") -> "Poly":
        self._check_same_field(other)
        field = self.field
        size = max(len(self.coeffs), len(other.coeffs))
        coeffs = []
        for i in range(size):
            coeffs.append(field.sub(self.coefficient(i), other.coefficient(i)))
        return Poly(field, coeffs)

    def __neg__(self) -> "Poly":
        return Poly(self.field, [self.field.neg(c) for c in self.coeffs])

    def __mul__(self, other: "Poly | int") -> "Poly":
        if isinstance(other, int):
            return self.scale(other)
        self._check_same_field(other)
        field = self.field
        if self.is_zero or other.is_zero:
            return Poly.zero(field)
        out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                if b == 0:
                    continue
                out[i + j] = field.add(out[i + j], field.mul(a, b))
        return Poly(field, out)

    __rmul__ = __mul__

    def scale(self, scalar: int) -> "Poly":
        field = self.field
        scalar = field.element(scalar)
        if scalar == 0:
            return Poly.zero(field)
        return Poly(field, [field.mul(c, scalar) for c in self.coeffs])

    def shift(self, power: int) -> "Poly":
        """Multiply by ``z**power``."""
        if power < 0:
            raise FieldError(f"shift power must be non-negative, got {power}")
        if self.is_zero:
            return Poly.zero(self.field)
        return Poly(self.field, [0] * power + list(self.coeffs))

    def divmod(self, divisor: "Poly") -> tuple["Poly", "Poly"]:
        """Polynomial long division; returns ``(quotient, remainder)``."""
        self._check_same_field(divisor)
        field = self.field
        if divisor.is_zero:
            raise FieldError("polynomial division by zero")
        remainder = list(self.coeffs)
        quotient = [0] * max(len(self.coeffs) - len(divisor.coeffs) + 1, 0)
        inv_lead = field.inv(divisor.leading_coefficient())
        while len(remainder) >= len(divisor.coeffs) and any(remainder):
            # strip trailing zeros
            while remainder and remainder[-1] == 0:
                remainder.pop()
            if len(remainder) < len(divisor.coeffs):
                break
            shift_amount = len(remainder) - len(divisor.coeffs)
            factor = field.mul(remainder[-1], inv_lead)
            quotient[shift_amount] = factor
            for i, c in enumerate(divisor.coeffs):
                idx = shift_amount + i
                remainder[idx] = field.sub(remainder[idx], field.mul(factor, c))
        return Poly(field, quotient), Poly(field, remainder)

    def __floordiv__(self, other: "Poly") -> "Poly":
        return self.divmod(other)[0]

    def __mod__(self, other: "Poly") -> "Poly":
        return self.divmod(other)[1]

    def monic(self) -> "Poly":
        """Scale so the leading coefficient is one."""
        if self.is_zero:
            return Poly.zero(self.field)
        return self.scale(self.field.inv(self.leading_coefficient()))

    def derivative(self) -> "Poly":
        field = self.field
        coeffs = [
            field.mul(c, i) for i, c in enumerate(self.coeffs) if i > 0
        ]
        return Poly(field, coeffs)

    # -- evaluation ---------------------------------------------------------------------
    def evaluate(self, point: int) -> int:
        """Horner evaluation at a single point."""
        field = self.field
        acc = 0
        for c in reversed(self.coeffs):
            acc = field.add(field.mul(acc, point), c)
        return acc

    def evaluate_many(self, points) -> np.ndarray:
        """Horner evaluation at a vector of points (vectorised per step)."""
        field = self.field
        pts = field.array(points).reshape(-1)
        acc = np.zeros_like(pts)
        for c in reversed(self.coeffs):
            acc = field.add(field.mul(acc, pts), np.full_like(pts, c))
        return acc

    def __call__(self, point: "int | list | tuple | np.ndarray") -> "int | np.ndarray":
        if isinstance(point, (np.ndarray, list, tuple)):
            return self.evaluate_many(point)
        return self.evaluate(int(point))

    def compose(self, inner: "Poly") -> "Poly":
        """Return ``self(inner(z))`` (used to build composite polynomials)."""
        self._check_same_field(inner)
        result = Poly.zero(self.field)
        for c in reversed(self.coeffs):
            result = result * inner + Poly.constant(self.field, c)
        return result

    # -- gcd / euclid (needed by the Gao decoder) ------------------------------------------
    def gcd(self, other: "Poly") -> "Poly":
        a, b = self, other
        while not b.is_zero:
            a, b = b, a % b
        return a.monic() if not a.is_zero else a

    @staticmethod
    def partial_extended_gcd(
        a: "Poly", b: "Poly", degree_bound: int
    ) -> tuple["Poly", "Poly", "Poly"]:
        """Run the extended Euclidean algorithm until ``deg(r) < degree_bound``.

        Returns ``(r, s, t)`` with ``r = s*a + t*b`` and ``deg(r) < degree_bound``.
        This is the core step of Gao's Reed–Solomon decoder.
        """
        field = a.field
        r_prev, r_curr = a, b
        s_prev, s_curr = Poly.one(field), Poly.zero(field)
        t_prev, t_curr = Poly.zero(field), Poly.one(field)
        while r_curr.degree >= degree_bound and not r_curr.is_zero:
            quotient, remainder = r_prev.divmod(r_curr)
            r_prev, r_curr = r_curr, remainder
            s_prev, s_curr = s_curr, s_prev - quotient * s_curr
            t_prev, t_curr = t_curr, t_prev - quotient * t_curr
        return r_curr, s_curr, t_curr

    # -- dunder conveniences --------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Poly):
            return NotImplemented
        return self.field == other.field and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((self.field, tuple(self.coeffs)))

    def __len__(self) -> int:
        return len(self.coeffs)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        if self.is_zero:
            return "Poly(0)"
        terms = []
        for i, c in enumerate(self.coeffs):
            if c == 0:
                continue
            if i == 0:
                terms.append(str(c))
            elif i == 1:
                terms.append(f"{c}*z")
            else:
                terms.append(f"{c}*z^{i}")
        return "Poly(" + " + ".join(terms) + ")"
