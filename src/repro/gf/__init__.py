"""Finite-field substrate used by every coding layer of the CSM reproduction.

The paper operates over an arbitrary field ``F`` whose size is at least the
network size ``N``.  Two constructions are provided:

* :class:`~repro.gf.prime_field.PrimeField` — ``GF(p)`` for a prime ``p``,
  with numpy-vectorised arithmetic.  The default modulus is the Mersenne
  prime ``2**31 - 1`` so element products fit in ``int64`` without overflow.
* :class:`~repro.gf.extension_field.BinaryExtensionField` — ``GF(2**m)``,
  used by the Appendix A embedding of Boolean state machines.

On top of the fields the package provides dense univariate polynomials
(:class:`~repro.gf.polynomial.Poly`), sparse multivariate polynomials
(:class:`~repro.gf.multivariate.MultivariatePolynomial`, the representation of
state-transition functions), Lagrange/barycentric interpolation, Vandermonde
helpers, finite-field linear algebra and subproduct-tree fast multi-point
evaluation.
"""

from repro.gf.field import Field, OperationCounter
from repro.gf.prime_field import PrimeField, DEFAULT_PRIME
from repro.gf.extension_field import BinaryExtensionField
from repro.gf.polynomial import Poly
from repro.gf.multivariate import MultivariatePolynomial, Monomial
from repro.gf.lagrange import (
    lagrange_basis_row,
    lagrange_coefficient_matrix,
    lagrange_interpolate,
    barycentric_weights,
    barycentric_evaluate,
)
from repro.gf.vandermonde import vandermonde_matrix, vandermonde_solve
from repro.gf.linalg import gf_matmul, gf_matvec, gf_solve, gf_inverse_matrix, gf_rank
from repro.gf.matrix_cache import (
    cached_interpolation_matrix,
    cached_lagrange_coefficient_matrix,
    cached_transfer_matrix,
    cached_vandermonde,
    clear_matrix_cache,
    matrix_cache_info,
)
from repro.gf.fast_eval import SubproductTree, multi_point_evaluate

__all__ = [
    "Field",
    "OperationCounter",
    "PrimeField",
    "DEFAULT_PRIME",
    "BinaryExtensionField",
    "Poly",
    "MultivariatePolynomial",
    "Monomial",
    "lagrange_basis_row",
    "lagrange_coefficient_matrix",
    "lagrange_interpolate",
    "barycentric_weights",
    "barycentric_evaluate",
    "vandermonde_matrix",
    "vandermonde_solve",
    "gf_matmul",
    "gf_matvec",
    "gf_solve",
    "gf_inverse_matrix",
    "gf_rank",
    "cached_interpolation_matrix",
    "cached_lagrange_coefficient_matrix",
    "cached_transfer_matrix",
    "cached_vandermonde",
    "clear_matrix_cache",
    "matrix_cache_info",
    "SubproductTree",
    "multi_point_evaluate",
]
