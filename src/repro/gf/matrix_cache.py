"""Cached encode/decode matrices for the batched coded-round pipeline.

Every Reed–Solomon encode is the linear map ``codeword = V @ coeffs`` with
``V[i, j] = x_i ** j`` (a Vandermonde matrix over the evaluation points), and
every erasure decode of a clean word is the inverse map restricted to a set of
survivor points.  The scalar paths rebuild these structures implicitly on
every call (Horner evaluation, Lagrange interpolation, Berlekamp–Welch
systems); when many rounds are processed the matrices are identical from
round to round, so this module memoises them per
``(field, points, dimension)`` key.  With the matrices cached, encoding a
batch of ``B`` rounds collapses to one ``GF(p)`` matrix–matrix product and
erasure-decoding a clean batch to two.

All builders detach the field's operation counter while constructing a
matrix: cache construction is a one-off cost that must not be charged to
whichever round happens to trigger it (the amortised per-round cost is what
the throughput experiments measure).

The cache is process-global and unbounded; entries are small
(``O(N * K)`` int64) and the number of distinct ``(field, points,
dimension)`` combinations in any experiment is tiny.  ``clear_matrix_cache``
exists for tests and long-lived services.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.gf.field import Field
from repro.gf.lagrange import lagrange_coefficient_matrix
from repro.gf.linalg import gf_inverse_matrix
from repro.gf.vandermonde import vandermonde_matrix

_CACHE: dict[tuple, np.ndarray] = {}


def _field_key(field: Field) -> tuple:
    return (type(field).__name__, field.order)


def _canonical_points(field: Field, points: Sequence[int]) -> tuple[int, ...]:
    return tuple(field.element(int(p)) for p in points)


def _cached(field: Field, key: tuple, builder: Callable[[], np.ndarray]) -> np.ndarray:
    cached = _CACHE.get(key)
    if cached is None:
        saved_counter = field.counter
        field.attach_counter(None)
        try:
            cached = builder()
        finally:
            field.attach_counter(saved_counter)
        cached.setflags(write=False)
        _CACHE[key] = cached
    return cached


def cached_vandermonde(
    field: Field, points: Sequence[int], num_columns: int
) -> np.ndarray:
    """The (read-only) matrix ``V[i, j] = points[i] ** j``, memoised.

    This is the Reed–Solomon *encoding* matrix: ``codeword = V @ coeffs`` for
    a message coefficient vector of length ``num_columns``.
    """
    pts = _canonical_points(field, points)
    key = ("vandermonde", _field_key(field), pts, int(num_columns))
    return _cached(
        field, key, lambda: vandermonde_matrix(field, list(pts), int(num_columns))
    )


def cached_interpolation_matrix(field: Field, points: Sequence[int]) -> np.ndarray:
    """The (read-only) inverse ``V**-1`` of the square Vandermonde at ``points``.

    This is the *decoding* matrix for clean words: ``coeffs = V**-1 @ values``
    recovers the coefficients of the unique polynomial of degree
    ``< len(points)`` through the given evaluations.
    """
    pts = _canonical_points(field, points)
    key = ("interpolation", _field_key(field), pts)
    return _cached(
        field,
        key,
        lambda: gf_inverse_matrix(field, vandermonde_matrix(field, list(pts), len(pts))),
    )


def cached_transfer_matrix(
    field: Field, from_points: Sequence[int], to_points: Sequence[int]
) -> np.ndarray:
    """The (read-only) map from values at ``from_points`` to values at ``to_points``.

    For polynomials of degree ``< len(from_points)`` the evaluations at any
    other point set are a fixed linear map
    ``T = V_to @ V_from**-1``; this is the matrix the batched decoder applies
    to re-encode candidate codewords and to evaluate decoded polynomials at
    the ``omega_k`` without materialising coefficient-form polynomials.
    """
    src = _canonical_points(field, from_points)
    dst = _canonical_points(field, to_points)
    key = ("transfer", _field_key(field), src, dst)

    def build() -> np.ndarray:
        inverse = gf_inverse_matrix(
            field, vandermonde_matrix(field, list(src), len(src))
        )
        target = vandermonde_matrix(field, list(dst), len(src))
        return field.matmul(target, inverse)

    return _cached(field, key, build)


def cached_lagrange_coefficient_matrix(
    field: Field, omegas: Sequence[int], alphas: Sequence[int]
) -> np.ndarray:
    """The (read-only) ``N x K`` Lagrange coefficient matrix ``C``, memoised.

    Row ``i`` holds the coefficients node ``i`` applies to encode the ``K``
    true values into its coded value (equation (7) of the paper).
    """
    src = _canonical_points(field, omegas)
    dst = _canonical_points(field, alphas)
    key = ("lagrange-C", _field_key(field), src, dst)
    return _cached(
        field,
        key,
        lambda: lagrange_coefficient_matrix(field, list(src), list(dst)),
    )


def clear_matrix_cache() -> None:
    """Drop every cached matrix (tests / long-lived processes)."""
    _CACHE.clear()


def matrix_cache_info() -> dict[str, int]:
    """Cache occupancy by matrix kind (diagnostics only)."""
    info: dict[str, int] = {}
    for key in _CACHE:
        info[key[0]] = info.get(key[0], 0) + 1
    return info
