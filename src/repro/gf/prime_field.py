"""Prime field ``GF(p)`` with numpy-vectorised arithmetic.

The default modulus is the Mersenne prime ``2**31 - 1``.  With all canonical
representatives below ``2**31``, the product of two elements fits in a signed
64-bit integer, so every element-wise operation can be carried out directly on
``int64`` numpy arrays without resorting to Python-object arithmetic.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import FieldError
from repro.gf.field import ArrayLike, Field

#: Mersenne prime 2**31 - 1; large enough for any realistic network size and
#: safe for int64 products.
DEFAULT_PRIME = 2_147_483_647

#: A small set of useful primes for tests and experiments.
SMALL_PRIMES = (7, 11, 13, 17, 97, 101, 257, 65_537)

#: Split-limb parameters for the blocked matmul: with ``p < 2**31.5`` the
#: high limb ``a >> 16`` stays below ``2**15.5`` and the low limb below
#: ``2**16``, so a limb-times-element product is below ``2**47.5`` and up to
#: ``2**15`` of them can be summed in a signed 64-bit accumulator.
_LIMB_BITS = 16
_LIMB_MASK = (1 << _LIMB_BITS) - 1
_MATMUL_BLOCK = 1 << 15


def _is_probable_prime(n: int) -> bool:
    """Deterministic Miller–Rabin for 64-bit integers."""
    if n < 2:
        return False
    small = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in small:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


class PrimeField(Field):
    """The field of integers modulo a prime ``p``.

    Scalars are Python ``int`` values in ``[0, p)``; vectors are numpy
    ``int64`` arrays with the same canonical range.  All arithmetic methods
    accept either form (and broadcast like numpy).

    Parameters
    ----------
    modulus:
        The prime modulus.  Must be prime and small enough that ``p**2`` fits
        in a signed 64-bit integer (``p < 2**31.5``); the default Mersenne
        prime satisfies both.
    """

    def __init__(self, modulus: int = DEFAULT_PRIME) -> None:
        super().__init__()
        modulus = int(modulus)
        if not _is_probable_prime(modulus):
            raise FieldError(f"PrimeField modulus must be prime, got {modulus}")
        if modulus * modulus >= 2**63:
            raise FieldError(
                "PrimeField modulus too large for int64-safe vectorised products; "
                f"got {modulus}"
            )
        self._p = modulus

    # -- properties -----------------------------------------------------------
    @property
    def order(self) -> int:
        return self._p

    @property
    def characteristic(self) -> int:
        return self._p

    @property
    def modulus(self) -> int:
        return self._p

    # -- element handling -------------------------------------------------------
    def element(self, value: int) -> int:
        return int(value) % self._p

    def array(self, values: Iterable[int] | np.ndarray) -> np.ndarray:
        arr = np.asarray(values, dtype=np.int64)
        return np.mod(arr, self._p)

    # -- arithmetic ----------------------------------------------------------------
    def add(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        self._count_add(self._size_of(a, b))
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np.mod(np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64), self._p)
        return (int(a) + int(b)) % self._p

    def sub(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        self._count_add(self._size_of(a, b))
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np.mod(np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64), self._p)
        return (int(a) - int(b)) % self._p

    def mul(self, a: ArrayLike, b: ArrayLike) -> ArrayLike:
        self._count_mul(self._size_of(a, b))
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return np.mod(np.asarray(a, dtype=np.int64) * np.asarray(b, dtype=np.int64), self._p)
        return (int(a) * int(b)) % self._p

    def neg(self, a: ArrayLike) -> ArrayLike:
        self._count_add(self._size_of(a))
        if isinstance(a, np.ndarray):
            return np.mod(-np.asarray(a, dtype=np.int64), self._p)
        return (-int(a)) % self._p

    def inv(self, a: ArrayLike) -> ArrayLike:
        bits = max(self._p.bit_length() - 1, 1)
        if isinstance(a, np.ndarray):
            if np.any(np.mod(a, self._p) == 0):
                raise FieldError("cannot invert zero element of GF(p)")
            self._count_inv(a.size, mul_equivalent=2 * bits * a.size)
            return self._vector_pow(np.asarray(a, dtype=np.int64), self._p - 2)
        value = int(a) % self._p
        if value == 0:
            raise FieldError("cannot invert zero element of GF(p)")
        self._count_inv(1, mul_equivalent=2 * bits)
        return pow(value, self._p - 2, self._p)

    def pow(self, a: ArrayLike, exponent: int) -> ArrayLike:
        exponent = int(exponent)
        if exponent < 0:
            return self.pow(self.inv(a), -exponent)
        if isinstance(a, np.ndarray):
            self._count_mul(2 * max(exponent.bit_length(), 1) * a.size)
            return self._vector_pow(np.asarray(a, dtype=np.int64), exponent)
        self._count_mul(2 * max(exponent.bit_length(), 1))
        return pow(int(a) % self._p, exponent, self._p)

    def _vector_pow(self, base: np.ndarray, exponent: int) -> np.ndarray:
        """Square-and-multiply over an int64 array, elementwise."""
        result = np.ones_like(base)
        base = np.mod(base, self._p)
        e = int(exponent)
        while e > 0:
            if e & 1:
                result = np.mod(result * base, self._p)
            base = np.mod(base * base, self._p)
            e >>= 1
        return result

    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Blocked split-limb matrix product over ``GF(p)``.

        The left operand is split into 16-bit limbs ``a = hi * 2**16 + lo``;
        each limb–operand product stays below ``2**47.5``, so numpy's native
        ``int64`` matrix multiply can sum up to ``2**15`` inner-dimension
        terms per block without overflow.  Wider inner dimensions are
        accumulated block by block with a reduction in between.  Results are
        the canonical representatives (bit-identical to the rank-1-update
        formulation this replaces, kept as :meth:`_matmul_rank1` for the
        micro-benchmarks) and the operation counts charged match the generic
        row-by-column path exactly.
        """
        a_arr = self.array(a)
        b_arr = self.array(b)
        if a_arr.ndim != 2 or b_arr.ndim != 2 or a_arr.shape[1] != b_arr.shape[0]:
            raise FieldError(
                f"shape mismatch for matmul: {a_arr.shape} @ {b_arr.shape}"
            )
        rows, inner = a_arr.shape
        cols = b_arr.shape[1]
        self._count_mul(rows * inner * cols)
        self._count_add(rows * max(inner - 1, 0) * cols)
        out = np.zeros((rows, cols), dtype=np.int64)
        for start in range(0, inner, _MATMUL_BLOCK):
            a_blk = a_arr[:, start : start + _MATMUL_BLOCK]
            b_blk = b_arr[start : start + _MATMUL_BLOCK, :]
            hi = ((a_blk >> _LIMB_BITS) @ b_blk) % self._p
            lo = ((a_blk & _LIMB_MASK) @ b_blk) % self._p
            out += (hi << _LIMB_BITS) + lo
            out %= self._p
        return out

    def _matmul_rank1(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """The previous rank-1-update matmul, kept as the reference the
        micro-benchmark compares :meth:`matmul` against."""
        a_arr = self.array(a)
        b_arr = self.array(b)
        if a_arr.ndim != 2 or b_arr.ndim != 2 or a_arr.shape[1] != b_arr.shape[0]:
            raise FieldError(
                f"shape mismatch for matmul: {a_arr.shape} @ {b_arr.shape}"
            )
        rows, inner = a_arr.shape
        cols = b_arr.shape[1]
        self._count_mul(rows * inner * cols)
        self._count_add(rows * max(inner - 1, 0) * cols)
        out = np.zeros((rows, cols), dtype=np.int64)
        for t in range(inner):
            out += a_arr[:, t, None] * b_arr[None, t, :] % self._p
            out %= self._p
        return out

    # -- extras ------------------------------------------------------------------------
    def powers(self, base: int, count: int) -> np.ndarray:
        """Return ``[base**0, base**1, ..., base**(count-1)]`` as an array."""
        base = self.element(base)
        out = np.empty(count, dtype=np.int64)
        acc = 1
        for i in range(count):
            out[i] = acc
            acc = (acc * base) % self._p
        self._count_mul(max(count - 1, 0))
        return out

    def geometric_column(self, points: np.ndarray, degree: int) -> np.ndarray:
        """Return the matrix ``[points_i ** j]`` for ``j = 0..degree`` (Vandermonde)."""
        pts = self.array(points).reshape(-1)
        matrix = np.empty((pts.shape[0], degree + 1), dtype=np.int64)
        matrix[:, 0] = 1
        for j in range(1, degree + 1):
            matrix[:, j] = np.mod(matrix[:, j - 1] * pts, self._p)
        self._count_mul(pts.shape[0] * degree)
        return matrix

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"PrimeField(p={self._p})"


@lru_cache(maxsize=None)
def default_field() -> PrimeField:
    """Shared default field instance (``GF(2**31 - 1)``) without a counter."""
    return PrimeField(DEFAULT_PRIME)
