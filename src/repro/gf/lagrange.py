"""Lagrange interpolation utilities.

CSM's coded state (Section 5.1) is defined through the Lagrange interpolation
polynomial ``u_t(z) = sum_k S_k(t) * prod_{l != k} (z - omega_l)/(omega_k - omega_l)``.
The coded state of node ``i`` is ``u_t(alpha_i)``; the coefficients
``c_ik = prod_{l != k} (alpha_i - omega_l)/(omega_k - omega_l)`` form the
``N x K`` encoding matrix that INTERMIX later verifies.

This module provides:

* :func:`lagrange_basis_row` — the row ``(c_i1, ..., c_iK)`` for one
  evaluation point.
* :func:`lagrange_coefficient_matrix` — the full ``N x K`` matrix ``C``.
* :func:`lagrange_interpolate` — the interpolating :class:`Poly` through
  ``(x_j, y_j)`` pairs.
* barycentric evaluation, which avoids materialising the coefficient form
  when only evaluations are needed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import FieldError
from repro.gf.field import Field
from repro.gf.polynomial import Poly


def _require_distinct(field: Field, points: Sequence[int], label: str) -> list[int]:
    canonical = [field.element(int(p)) for p in points]
    if len(set(canonical)) != len(canonical):
        raise FieldError(f"{label} must be distinct field elements")
    return canonical


def lagrange_basis_row(
    field: Field, omegas: Sequence[int], alpha: int
) -> np.ndarray:
    """Return ``[c_1, ..., c_K]`` with ``c_k = prod_{l != k} (alpha - omega_l)/(omega_k - omega_l)``.

    These are the Lagrange basis polynomials evaluated at ``alpha``; a coded
    state is the inner product of this row with the vector of true states.
    """
    omegas = _require_distinct(field, omegas, "interpolation points")
    alpha = field.element(alpha)
    k = len(omegas)
    row = np.zeros(k, dtype=np.int64)
    for idx in range(k):
        numerator = 1
        denominator = 1
        for other in range(k):
            if other == idx:
                continue
            numerator = field.mul(numerator, field.sub(alpha, omegas[other]))
            denominator = field.mul(denominator, field.sub(omegas[idx], omegas[other]))
        row[idx] = field.mul(numerator, field.inv(denominator))
    return row


def lagrange_coefficient_matrix(
    field: Field, omegas: Sequence[int], alphas: Sequence[int]
) -> np.ndarray:
    """The ``N x K`` matrix ``C = [c_ik]`` mapping true states to coded states.

    Row ``i`` corresponds to evaluation point ``alphas[i]``; column ``k`` to
    interpolation point ``omegas[k]``.  ``coded = C @ states`` over the field.
    """
    omegas = _require_distinct(field, omegas, "interpolation points")
    alphas = _require_distinct(field, alphas, "evaluation points")
    matrix = np.zeros((len(alphas), len(omegas)), dtype=np.int64)
    for i, alpha in enumerate(alphas):
        matrix[i, :] = lagrange_basis_row(field, omegas, alpha)
    return matrix


def lagrange_interpolate(
    field: Field, xs: Sequence[int], ys: Sequence[int]
) -> Poly:
    """Return the unique polynomial of degree < len(xs) through ``(x_j, y_j)``."""
    xs = _require_distinct(field, xs, "interpolation abscissae")
    ys = [field.element(int(y)) for y in ys]
    if len(xs) != len(ys):
        raise FieldError(
            f"interpolation needs matching point counts, got {len(xs)} and {len(ys)}"
        )
    result = Poly.zero(field)
    for j, (xj, yj) in enumerate(zip(xs, ys)):
        if yj == 0:
            continue
        numerator = Poly.one(field)
        denominator = 1
        for m, xm in enumerate(xs):
            if m == j:
                continue
            numerator = numerator * Poly(field, [field.neg(xm), 1])
            denominator = field.mul(denominator, field.sub(xj, xm))
        scale = field.mul(yj, field.inv(denominator))
        result = result + numerator.scale(scale)
    return result


def barycentric_weights(field: Field, xs: Sequence[int]) -> np.ndarray:
    """Barycentric weights ``w_j = 1 / prod_{m != j} (x_j - x_m)``."""
    xs = _require_distinct(field, xs, "interpolation abscissae")
    weights = np.zeros(len(xs), dtype=np.int64)
    for j, xj in enumerate(xs):
        denom = 1
        for m, xm in enumerate(xs):
            if m == j:
                continue
            denom = field.mul(denom, field.sub(xj, xm))
        weights[j] = field.inv(denom)
    return weights


def barycentric_evaluate(
    field: Field,
    xs: Sequence[int],
    ys: Sequence[int],
    weights: np.ndarray,
    point: int,
) -> int:
    """Evaluate the interpolant through ``(xs, ys)`` at ``point``.

    Uses the first barycentric form ``L(z) = l(z) * sum_j w_j y_j / (z - x_j)``
    where ``l(z) = prod_j (z - x_j)``.  If ``point`` coincides with an
    abscissa the corresponding ``y`` value is returned directly.
    """
    xs = [field.element(int(x)) for x in xs]
    ys = [field.element(int(y)) for y in ys]
    point = field.element(point)
    for xj, yj in zip(xs, ys):
        if xj == point:
            return yj
    node_poly_value = 1
    for xj in xs:
        node_poly_value = field.mul(node_poly_value, field.sub(point, xj))
    total = 0
    for xj, yj, wj in zip(xs, ys, weights):
        term = field.mul(int(wj), yj)
        term = field.mul(term, field.inv(field.sub(point, xj)))
        total = field.add(total, term)
    return field.mul(node_poly_value, total)
