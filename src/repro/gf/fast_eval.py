"""Fast multi-point evaluation and interpolation via subproduct trees.

Section 6.2 of the paper relies on fast polynomial arithmetic — interpolation
in ``O(K log^2 K log log K)`` and multi-point evaluation in
``O(N log^2 N log log N)`` — to make the delegated worker's coding cost
quasilinear.  This module implements the classical subproduct-tree algorithms
(divide-and-conquer evaluation and interpolation); the field multiplication
itself is schoolbook, so the constants differ from the paper's model, but the
structural speed-up over naive ``O(NK)`` evaluation is preserved and is what
the throughput-scaling benchmark measures.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import FieldError
from repro.gf.field import Field
from repro.gf.polynomial import Poly


class SubproductTree:
    """Binary tree of products ``prod (z - x_i)`` over subsets of the points.

    The leaves are the linear polynomials ``z - x_i``; each internal node is
    the product of its children.  The root is the node polynomial of the full
    point set.  The tree supports:

    * :meth:`evaluate` — evaluate a polynomial at every point by recursive
      remaindering (fast multi-point evaluation).
    * :meth:`interpolate` — build the interpolant through values at the
      points by the divide-and-conquer combination of sub-interpolants.
    """

    def __init__(self, field: Field, points: Sequence[int]) -> None:
        canonical = [field.element(int(p)) for p in points]
        if len(set(canonical)) != len(canonical):
            raise FieldError("subproduct tree requires distinct points")
        if not canonical:
            raise FieldError("subproduct tree requires at least one point")
        self.field = field
        self.points = canonical
        # levels[0] is the list of leaves; levels[-1] has a single root.
        self.levels: list[list[Poly]] = []
        leaves = [Poly(field, [field.neg(x), 1]) for x in canonical]
        self.levels.append(leaves)
        current = leaves
        while len(current) > 1:
            nxt: list[Poly] = []
            for i in range(0, len(current), 2):
                if i + 1 < len(current):
                    nxt.append(current[i] * current[i + 1])
                else:
                    nxt.append(current[i])
            self.levels.append(nxt)
            current = nxt

    @property
    def root(self) -> Poly:
        return self.levels[-1][0]

    # -- fast evaluation ------------------------------------------------------------
    def evaluate(self, poly: Poly) -> np.ndarray:
        """Evaluate ``poly`` at every tree point (order matches ``points``)."""
        if poly.field != self.field:
            raise FieldError("polynomial over a different field")
        values = self._evaluate_recursive(poly, len(self.levels) - 1, 0)
        return np.asarray(values, dtype=np.int64)

    def _evaluate_recursive(self, poly: Poly, level: int, index: int) -> list[int]:
        node = self.levels[level][index]
        reduced = poly % node if poly.degree >= node.degree else poly
        if level == 0:
            # node is (z - x); the remainder is the constant poly(x).
            return [reduced.coefficient(0)]
        left_index = 2 * index
        right_index = 2 * index + 1
        left = self._evaluate_recursive(reduced, level - 1, left_index)
        if right_index < len(self.levels[level - 1]):
            right = self._evaluate_recursive(reduced, level - 1, right_index)
        else:
            right = []
        return left + right

    # -- fast interpolation ------------------------------------------------------------
    def interpolate(self, values: Sequence[int]) -> Poly:
        """Interpolating polynomial through ``(points[i], values[i])``."""
        vals = [self.field.element(int(v)) for v in values]
        if len(vals) != len(self.points):
            raise FieldError(
                f"expected {len(self.points)} values, got {len(vals)}"
            )
        derivative = self.root.derivative()
        denominators = self._evaluate_recursive(derivative, len(self.levels) - 1, 0)
        weights = [
            self.field.mul(v, self.field.inv(d)) for v, d in zip(vals, denominators)
        ]
        poly = self._interpolate_recursive(weights, len(self.levels) - 1, 0)
        return poly

    def _interpolate_recursive(
        self, weights: Sequence[int], level: int, index: int
    ) -> Poly:
        if level == 0:
            return Poly.constant(self.field, weights[0])
        left_index = 2 * index
        right_index = 2 * index + 1
        children = self.levels[level - 1]
        left_size = self._subtree_size(level - 1, left_index)
        left_weights = weights[:left_size]
        right_weights = weights[left_size:]
        left_poly = self._interpolate_recursive(left_weights, level - 1, left_index)
        if right_index < len(children) and right_weights:
            right_poly = self._interpolate_recursive(right_weights, level - 1, right_index)
            return left_poly * children[right_index] + right_poly * children[left_index]
        return left_poly

    def _subtree_size(self, level: int, index: int) -> int:
        """Number of leaf points under the node at (level, index)."""
        if level == 0:
            return 1
        left = self._subtree_size(level - 1, 2 * index)
        right_index = 2 * index + 1
        if right_index < len(self.levels[level - 1]):
            return left + self._subtree_size(level - 1, right_index)
        return left


def multi_point_evaluate(field: Field, poly: Poly, points: Sequence[int]) -> np.ndarray:
    """Evaluate ``poly`` at ``points`` using a subproduct tree.

    Falls back to Horner evaluation for very small point sets where building
    the tree costs more than it saves.
    """
    if len(points) <= 4 or poly.degree <= 1:
        return poly.evaluate_many(list(points))
    tree = SubproductTree(field, points)
    return tree.evaluate(poly)
