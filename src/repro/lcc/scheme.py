"""The Lagrange coding scheme: points and the coefficient matrix ``C``.

Equation (7) of the paper defines the coded state stored at node ``i`` as

    S~_i(t) = sum_k S_k(t) * prod_{l != k} (alpha_i - omega_l) / (omega_k - omega_l)
            = sum_k c_ik S_k(t),

i.e. a fixed linear combination of the ``K`` true states whose coefficients
depend only on the evaluation points — not on the round or on the transition
function (Remark 4).  The same coefficients encode the input commands.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError, FieldError
from repro.gf.field import Field
from repro.gf.linalg import gf_matvec
from repro.gf.matrix_cache import cached_lagrange_coefficient_matrix


class LagrangeScheme:
    """Evaluation points and coefficient matrix shared by all CSM nodes.

    Parameters
    ----------
    field:
        The finite field; its order must exceed ``num_nodes + num_machines``
        so that distinct points can be chosen.
    num_machines:
        ``K``, the number of state machines (interpolation points).
    num_nodes:
        ``N``, the number of compute nodes (evaluation points).
    omegas, alphas:
        Optional explicit point sets.  By default ``omega_k = k`` and
        ``alpha_i = K + i`` (1-based), which are distinct whenever the field
        is large enough.  The two sets are allowed to overlap in principle
        (a node whose ``alpha_i`` equals some ``omega_k`` simply stores that
        machine's true state), but the default keeps them disjoint.
    """

    def __init__(
        self,
        field: Field,
        num_machines: int,
        num_nodes: int,
        omegas: Sequence[int] | None = None,
        alphas: Sequence[int] | None = None,
    ) -> None:
        if num_machines < 1:
            raise ConfigurationError(f"need at least one state machine, got {num_machines}")
        if num_nodes < num_machines:
            raise ConfigurationError(
                f"need at least as many nodes as machines, got N={num_nodes} < K={num_machines}"
            )
        if field.order <= num_nodes + num_machines:
            raise ConfigurationError(
                f"field of order {field.order} too small for K={num_machines}, N={num_nodes}"
            )
        self.field = field
        self.num_machines = int(num_machines)
        self.num_nodes = int(num_nodes)
        if omegas is None:
            omegas = field.distinct_points(num_machines, start=1)
        if alphas is None:
            alphas = field.distinct_points(num_nodes, start=num_machines + 1)
        self.omegas = [field.element(int(w)) for w in omegas]
        self.alphas = [field.element(int(a)) for a in alphas]
        if len(self.omegas) != num_machines:
            raise ConfigurationError(
                f"expected {num_machines} interpolation points, got {len(self.omegas)}"
            )
        if len(self.alphas) != num_nodes:
            raise ConfigurationError(
                f"expected {num_nodes} evaluation points, got {len(self.alphas)}"
            )
        if len(set(self.omegas)) != len(self.omegas):
            raise ConfigurationError("interpolation points omega must be distinct")
        if len(set(self.alphas)) != len(self.alphas):
            raise ConfigurationError("evaluation points alpha must be distinct")
        self._coefficient_matrix: np.ndarray | None = None

    # -- coefficient matrix ---------------------------------------------------------
    @property
    def coefficient_matrix(self) -> np.ndarray:
        """The ``N x K`` matrix ``C`` with ``coded = C @ true``.

        Served from the process-wide matrix cache so that many engines (and
        many batches) over the same point geometry share one build.  The
        returned array is read-only; ``coefficient_row`` hands out copies.
        """
        if self._coefficient_matrix is None:
            self._coefficient_matrix = cached_lagrange_coefficient_matrix(
                self.field, self.omegas, self.alphas
            )
        return self._coefficient_matrix

    def coefficient_row(self, node_index: int) -> np.ndarray:
        """Row ``i`` of ``C`` — the coefficients node ``i`` applies locally."""
        self._check_node_index(node_index)
        return self.coefficient_matrix[node_index, :].copy()

    # -- encoding primitives -----------------------------------------------------------
    def encode_scalars(self, values: Sequence[int]) -> np.ndarray:
        """Encode one scalar per machine into one coded scalar per node."""
        vec = self.field.array(values).reshape(-1)
        if vec.shape[0] != self.num_machines:
            raise FieldError(
                f"expected {self.num_machines} scalars, got {vec.shape[0]}"
            )
        return gf_matvec(self.field, self.coefficient_matrix, vec)

    def encode_vectors(self, values: np.ndarray) -> np.ndarray:
        """Encode ``K`` vectors (shape ``(K, dim)``) into ``N`` coded vectors.

        The encoding is applied independently to each of the ``dim``
        components, exactly as a node would apply equation (7) to each entry
        of its state vector.
        """
        arr = self.field.array(values)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.shape[0] != self.num_machines:
            raise FieldError(
                f"expected {self.num_machines} rows (one per machine), got {arr.shape[0]}"
            )
        return self.field.matmul(self.coefficient_matrix, arr)

    def encode_for_node(self, node_index: int, values: np.ndarray) -> np.ndarray:
        """Encode ``K`` vectors into the single coded vector of one node."""
        self._check_node_index(node_index)
        arr = self.field.array(values)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        row = self.coefficient_row(node_index)
        out = np.zeros(arr.shape[1], dtype=np.int64)
        for component in range(arr.shape[1]):
            out[component] = self.field.dot(row, arr[:, component])
        return out

    # -- geometry ------------------------------------------------------------------------
    def composite_degree(self, transition_degree: int) -> int:
        """Degree of ``h(z) = f(u(z), v(z))``: ``d * (K - 1)``."""
        return transition_degree * (self.num_machines - 1)

    def decoding_dimension(self, transition_degree: int) -> int:
        """Reed–Solomon dimension of the coded results: ``d(K-1) + 1``."""
        return self.composite_degree(transition_degree) + 1

    def max_correctable_errors(self, transition_degree: int) -> int:
        """Errors correctable when all ``N`` results arrive (synchronous)."""
        return (self.num_nodes - self.decoding_dimension(transition_degree)) // 2

    def _check_node_index(self, node_index: int) -> None:
        if not 0 <= node_index < self.num_nodes:
            raise ConfigurationError(
                f"node index {node_index} out of range for N={self.num_nodes}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"LagrangeScheme(K={self.num_machines}, N={self.num_nodes}, "
            f"field_order={self.field.order})"
        )
