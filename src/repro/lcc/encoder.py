"""Encoding of states and commands into their coded counterparts.

Two equivalent paths are provided, mirroring Sections 5 and 6 of the paper:

* **Distributed path** (:meth:`CodedStateEncoder.encode`): apply the
  coefficient matrix row by row — what every node does for itself in the
  baseline CSM protocol.  Cost ``Theta(N * K)`` field operations in total.
* **Centralised path** (:meth:`CodedStateEncoder.encode_via_interpolation`):
  interpolate the Lagrange polynomial through ``(omega_k, value_k)`` and then
  evaluate it at all ``alpha_i`` with a subproduct tree — the single-worker
  path of Section 6.2 whose cost is quasilinear in ``N``.  INTERMIX verifies
  that both paths agree (they are the same linear map ``C``).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FieldError
from repro.gf.fast_eval import SubproductTree
from repro.gf.lagrange import lagrange_interpolate
from repro.lcc.scheme import LagrangeScheme


class CodedStateEncoder:
    """Encoder bound to a :class:`LagrangeScheme`."""

    def __init__(self, scheme: LagrangeScheme) -> None:
        self.scheme = scheme
        self.field = scheme.field
        self._alpha_tree: SubproductTree | None = None

    # -- distributed path ------------------------------------------------------------
    def encode(self, values: np.ndarray) -> np.ndarray:
        """Encode ``K`` vectors (shape ``(K, dim)``) into ``N`` coded vectors.

        This is the matrix–vector path: every output row is the inner product
        of one row of the coefficient matrix with the input column.
        """
        return self.scheme.encode_vectors(values)

    def encode_for_node(self, node_index: int, values: np.ndarray) -> np.ndarray:
        """Encode the input for a single node (one row of the matrix path)."""
        return self.scheme.encode_for_node(node_index, values)

    def encode_batch(self, values: np.ndarray) -> np.ndarray:
        """Encode ``B`` rounds at once: ``(B, K, dim) -> (B, N, dim)``.

        The batch is flattened to a single ``(K, B * dim)`` matrix so that
        encoding all ``B`` rounds is one ``GF(p)`` matrix–matrix product with
        the cached coefficient matrix — this is the pipeline's replacement
        for ``B`` rounds of per-node inner-product encoding, and every
        ``[b, i, :]`` slice is bit-identical to what node ``i`` would have
        computed for round ``b`` on its own.
        """
        arr = self.field.array(values)
        if arr.ndim == 2:
            arr = arr[None, :, :]
        if arr.ndim != 3 or arr.shape[1] != self.scheme.num_machines:
            raise FieldError(
                f"expected a (batch, K={self.scheme.num_machines}, dim) array, "
                f"got {arr.shape}"
            )
        batch, _, dim = arr.shape
        flat = arr.transpose(1, 0, 2).reshape(self.scheme.num_machines, batch * dim)
        coded = self.field.matmul(self.scheme.coefficient_matrix, flat)
        return coded.reshape(self.scheme.num_nodes, batch, dim).transpose(1, 0, 2)

    # -- centralised (worker) path ------------------------------------------------------
    def encode_via_interpolation(self, values: np.ndarray) -> np.ndarray:
        """Encode by polynomial interpolation + multi-point evaluation.

        Step 1 of Section 6.2 interpolates ``v_t(z)`` through
        ``(omega_k, X_k(t))``; step 2 evaluates it at every ``alpha_i``.  The
        result is numerically identical to :meth:`encode` — the benchmark
        suite compares their operation counts.
        """
        arr = self.field.array(values)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.shape[0] != self.scheme.num_machines:
            raise FieldError(
                f"expected {self.scheme.num_machines} rows, got {arr.shape[0]}"
            )
        tree = self._get_alpha_tree()
        out = np.zeros((self.scheme.num_nodes, arr.shape[1]), dtype=np.int64)
        for component in range(arr.shape[1]):
            poly = lagrange_interpolate(
                self.field, self.scheme.omegas, [int(v) for v in arr[:, component]]
            )
            out[:, component] = tree.evaluate(poly)
        return out

    def interpolation_polynomials(self, values: np.ndarray) -> list:
        """Return the interpolants ``[p_component(z)]`` through the omegas.

        The coded execution analysis needs these polynomials explicitly: the
        state polynomial ``u_t(z)`` and command polynomial ``v_t(z)`` are the
        interpolants of the state/command components.
        """
        arr = self.field.array(values)
        if arr.ndim == 1:
            arr = arr.reshape(-1, 1)
        if arr.shape[0] != self.scheme.num_machines:
            raise FieldError(
                f"expected {self.scheme.num_machines} rows, got {arr.shape[0]}"
            )
        return [
            lagrange_interpolate(
                self.field, self.scheme.omegas, [int(v) for v in arr[:, component]]
            )
            for component in range(arr.shape[1])
        ]

    def _get_alpha_tree(self) -> SubproductTree:
        if self._alpha_tree is None:
            self._alpha_tree = SubproductTree(self.field, self.scheme.alphas)
        return self._alpha_tree
