"""Decoding of coded computation results back into per-machine outputs.

After the execution step every node has broadcast its coded result
``g_i = f(S~_i, X~_i)``, a vector whose every component is the evaluation at
``alpha_i`` of some polynomial of degree at most ``d(K - 1)``.  The decoder
runs noisy interpolation (Reed–Solomon decoding) independently on each
component, then evaluates the recovered polynomials at the ``omega_k`` to
obtain ``(S_k(t+1), Y_k(t)) = f(S_k(t), X_k(t))`` for every machine ``k``.

Both the synchronous case (all ``N`` results present, up to ``b`` wrong) and
the partially synchronous case (``b`` results missing *and* up to ``b`` of the
present ones wrong) are supported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DecodingError, FieldError
from repro.coding.berlekamp_welch import BerlekampWelchDecoder
from repro.coding.erasure import ErasureDecoder
from repro.coding.gao import GaoDecoder
from repro.coding.reed_solomon import ReedSolomonCode
from repro.gf.polynomial import Poly
from repro.lcc.scheme import LagrangeScheme


@dataclass
class DecodedRound:
    """Result of decoding one round of coded computations.

    Attributes
    ----------
    outputs:
        Array of shape ``(K, result_dim)``: row ``k`` is the true result
        ``f(S_k, X_k)`` for machine ``k``.
    polynomials:
        The recovered composite polynomial for each result component.
    error_nodes:
        Node indices whose contributed results were found to be erroneous in
        at least one component (the set the protocol may flag as suspects).
    """

    outputs: np.ndarray
    polynomials: list[Poly]
    error_nodes: tuple[int, ...]


class CodedResultDecoder:
    """Noisy-interpolation decoder bound to a :class:`LagrangeScheme`."""

    def __init__(
        self,
        scheme: LagrangeScheme,
        transition_degree: int,
        decoder: str = "berlekamp-welch",
    ) -> None:
        if transition_degree < 1:
            raise FieldError(
                f"transition degree must be at least 1, got {transition_degree}"
            )
        if decoder not in ("berlekamp-welch", "gao"):
            raise FieldError(f"unknown decoder '{decoder}'")
        self.scheme = scheme
        self.field = scheme.field
        self.transition_degree = int(transition_degree)
        self.decoder_kind = decoder
        self.code = ReedSolomonCode(
            scheme.field,
            scheme.alphas,
            scheme.decoding_dimension(transition_degree),
        )
        self._error_decoder = (
            BerlekampWelchDecoder(self.code)
            if decoder == "berlekamp-welch"
            else GaoDecoder(self.code)
        )
        self._erasure_decoder = ErasureDecoder(self.code)

    # -- public API -------------------------------------------------------------------
    @property
    def max_errors(self) -> int:
        """Errors correctable when all results are present."""
        return self.code.correction_radius

    def decode(self, coded_results: np.ndarray) -> DecodedRound:
        """Decode a full set of ``N`` coded results (synchronous setting).

        ``coded_results`` has shape ``(N, result_dim)``; up to
        ``max_errors`` rows may be arbitrary garbage.
        """
        results = self.field.array(coded_results)
        if results.ndim == 1:
            results = results.reshape(-1, 1)
        if results.shape[0] != self.scheme.num_nodes:
            raise DecodingError(
                f"expected {self.scheme.num_nodes} coded results, got {results.shape[0]}"
            )
        polynomials: list[Poly] = []
        error_nodes: set[int] = set()
        outputs = np.zeros(
            (self.scheme.num_machines, results.shape[1]), dtype=np.int64
        )
        for component in range(results.shape[1]):
            decoded = self._error_decoder.decode(results[:, component])
            polynomials.append(decoded.polynomial)
            error_nodes.update(decoded.error_positions)
            outputs[:, component] = decoded.polynomial.evaluate_many(self.scheme.omegas)
        return DecodedRound(
            outputs=outputs,
            polynomials=polynomials,
            error_nodes=tuple(sorted(error_nodes)),
        )

    def decode_partial(
        self, coded_results: list[np.ndarray | None]
    ) -> DecodedRound:
        """Decode when some results are missing (partially synchronous setting).

        ``coded_results`` is a length-``N`` list whose missing entries are
        ``None``; present entries are result vectors.  Decoding succeeds as
        long as ``2 * errors <= present - dimension`` for every component,
        which matches the paper's ``3b + 1 <= N - d(K - 1)`` bound when
        ``b`` nodes are silent and ``b`` present results are wrong.
        """
        if len(coded_results) != self.scheme.num_nodes:
            raise DecodingError(
                f"expected {self.scheme.num_nodes} result slots, got {len(coded_results)}"
            )
        present = [r for r in coded_results if r is not None]
        if not present:
            raise DecodingError("no coded results available to decode")
        result_dim = self.field.array(present[0]).reshape(-1).shape[0]
        polynomials: list[Poly] = []
        error_nodes: set[int] = set()
        outputs = np.zeros((self.scheme.num_machines, result_dim), dtype=np.int64)
        for component in range(result_dim):
            column: list[int | None] = []
            for entry in coded_results:
                if entry is None:
                    column.append(None)
                else:
                    vec = self.field.array(entry).reshape(-1)
                    if vec.shape[0] != result_dim:
                        raise DecodingError(
                            "all coded results must share the same dimension"
                        )
                    column.append(int(vec[component]))
            decoded = self._erasure_decoder.decode_with_erasures(column)
            polynomials.append(decoded.polynomial)
            error_nodes.update(decoded.error_positions)
            outputs[:, component] = decoded.polynomial.evaluate_many(self.scheme.omegas)
        return DecodedRound(
            outputs=outputs,
            polynomials=polynomials,
            error_nodes=tuple(sorted(error_nodes)),
        )
