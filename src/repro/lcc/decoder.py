"""Decoding of coded computation results back into per-machine outputs.

After the execution step every node has broadcast its coded result
``g_i = f(S~_i, X~_i)``, a vector whose every component is the evaluation at
``alpha_i`` of some polynomial of degree at most ``d(K - 1)``.  The decoder
runs noisy interpolation (Reed–Solomon decoding) independently on each
component, then evaluates the recovered polynomials at the ``omega_k`` to
obtain ``(S_k(t+1), Y_k(t)) = f(S_k(t), X_k(t))`` for every machine ``k``.

Both the synchronous case (all ``N`` results present, up to ``b`` wrong) and
the partially synchronous case (``b`` results missing *and* up to ``b`` of the
present ones wrong) are supported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DecodingError, FieldError
from repro.coding.berlekamp_welch import BerlekampWelchDecoder
from repro.coding.erasure import ErasureDecoder
from repro.coding.gao import GaoDecoder
from repro.coding.reed_solomon import ReedSolomonCode
from repro.gf.matrix_cache import cached_interpolation_matrix, cached_transfer_matrix
from repro.gf.polynomial import Poly
from repro.lcc.scheme import LagrangeScheme


@dataclass
class DecodedRound:
    """Result of decoding one round of coded computations.

    Attributes
    ----------
    outputs:
        Array of shape ``(K, result_dim)``: row ``k`` is the true result
        ``f(S_k, X_k)`` for machine ``k``.
    polynomials:
        The recovered composite polynomial for each result component.
    error_nodes:
        Node indices whose contributed results were found to be erroneous in
        at least one component (the set the protocol may flag as suspects).
    """

    outputs: np.ndarray
    polynomials: list[Poly]
    error_nodes: tuple[int, ...]


class CodedResultDecoder:
    """Noisy-interpolation decoder bound to a :class:`LagrangeScheme`."""

    def __init__(
        self,
        scheme: LagrangeScheme,
        transition_degree: int,
        decoder: str = "berlekamp-welch",
    ) -> None:
        if transition_degree < 1:
            raise FieldError(
                f"transition degree must be at least 1, got {transition_degree}"
            )
        if decoder not in ("berlekamp-welch", "gao"):
            raise FieldError(f"unknown decoder '{decoder}'")
        self.scheme = scheme
        self.field = scheme.field
        self.transition_degree = int(transition_degree)
        self.decoder_kind = decoder
        self.code = ReedSolomonCode(
            scheme.field,
            scheme.alphas,
            scheme.decoding_dimension(transition_degree),
        )
        self._error_decoder = (
            BerlekampWelchDecoder(self.code)
            if decoder == "berlekamp-welch"
            else GaoDecoder(self.code)
        )
        self._erasure_decoder = ErasureDecoder(self.code)

    # -- public API -------------------------------------------------------------------
    @property
    def max_errors(self) -> int:
        """Errors correctable when all results are present."""
        return self.code.correction_radius

    def decode(self, coded_results: np.ndarray) -> DecodedRound:
        """Decode a full set of ``N`` coded results (synchronous setting).

        ``coded_results`` has shape ``(N, result_dim)``; up to
        ``max_errors`` rows may be arbitrary garbage.
        """
        results = self.field.array(coded_results)
        if results.ndim == 1:
            results = results.reshape(-1, 1)
        if results.shape[0] != self.scheme.num_nodes:
            raise DecodingError(
                f"expected {self.scheme.num_nodes} coded results, got {results.shape[0]}"
            )
        polynomials: list[Poly] = []
        error_nodes: set[int] = set()
        outputs = np.zeros(
            (self.scheme.num_machines, results.shape[1]), dtype=np.int64
        )
        for component in range(results.shape[1]):
            decoded = self._error_decoder.decode(results[:, component])
            polynomials.append(decoded.polynomial)
            error_nodes.update(decoded.error_positions)
            outputs[:, component] = decoded.polynomial.evaluate_many(self.scheme.omegas)
        return DecodedRound(
            outputs=outputs,
            polynomials=polynomials,
            error_nodes=tuple(sorted(error_nodes)),
        )

    def decode_fast(
        self,
        coded_results: "np.ndarray | list[np.ndarray | None]",
        suspects: set[int] | None = None,
    ) -> DecodedRound:
        """Decode one round through the cached-matrix fast path.

        Instead of solving a Berlekamp–Welch system per component, the fast
        path interpolates a candidate polynomial through ``dimension`` pivot
        rows (one cached-matrix product for all components at once), re-encodes
        it at every point (a second product) and accepts any component whose
        mismatch count fits the erasure/error budget ``2e <= present - K`` —
        by the uniqueness of the codeword within that radius the candidate
        *is* the Berlekamp–Welch answer.  Components that exceed the budget
        (e.g. because a faulty node sat among the pivots) fall back to the
        scalar decoders, so results are always bit-identical to
        :meth:`decode` / :meth:`decode_partial`.

        ``suspects`` is the engine's persistent set of node indices caught
        erring in earlier components or rounds; pivots avoid them, which is
        what reduces a faulty batch to a single scalar decode per new fault
        pattern.  The set is updated in place with every error found.
        """
        if suspects is None:
            suspects = set()
        num_nodes = self.scheme.num_nodes
        if isinstance(coded_results, np.ndarray):
            matrix = self.field.array(coded_results)
            if matrix.ndim == 1:
                matrix = matrix.reshape(-1, 1)
            present = list(range(matrix.shape[0]))
        else:
            if len(coded_results) != num_nodes:
                raise DecodingError(
                    f"expected {num_nodes} result slots, got {len(coded_results)}"
                )
            present = [i for i, entry in enumerate(coded_results) if entry is not None]
            if not present:
                raise DecodingError("no coded results available to decode")
            width = self.field.array(coded_results[present[0]]).reshape(-1).shape[0]
            matrix = np.zeros((num_nodes, width), dtype=np.int64)
            for i in present:
                vec = self.field.array(coded_results[i]).reshape(-1)
                if vec.shape[0] != width:
                    raise DecodingError(
                        "all coded results must share the same dimension"
                    )
                matrix[i] = vec
        if matrix.shape[0] != num_nodes:
            raise DecodingError(
                f"expected {num_nodes} coded results, got {matrix.shape[0]}"
            )

        dimension = self.code.dimension
        full_presence = len(present) == num_nodes
        if len(present) < dimension:
            raise DecodingError(
                f"only {len(present)} symbols present, need at least "
                f"{dimension} to decode"
            )
        budget = len(present) - dimension
        present_arr = np.array(present, dtype=np.int64)
        all_points = tuple(int(a) for a in self.scheme.alphas)
        omega_points = tuple(int(w) for w in self.scheme.omegas)

        pivot: list[int] | None = None
        reencoded = candidate_outputs = candidate_coeffs = None
        polynomials: list[Poly] = []
        error_nodes: set[int] = set()
        outputs = np.zeros((self.scheme.num_machines, matrix.shape[1]), dtype=np.int64)
        for component in range(matrix.shape[1]):
            if pivot is None:
                pivot = [i for i in present if i not in suspects][:dimension]
                if len(pivot) < dimension:
                    pivot = present[:dimension]
                pivot_points = tuple(int(self.scheme.alphas[i]) for i in pivot)
                to_all = cached_transfer_matrix(self.field, pivot_points, all_points)
                to_omegas = cached_transfer_matrix(
                    self.field, pivot_points, omega_points
                )
                to_coeffs = cached_interpolation_matrix(self.field, pivot_points)
                sub = matrix[pivot, :]
                reencoded = self.field.matmul(to_all, sub)
                candidate_outputs = self.field.matmul(to_omegas, sub)
                candidate_coeffs = self.field.matmul(to_coeffs, sub)
            row_mismatch = reencoded[present_arr, component] != matrix[present_arr, component]
            errors = [int(present_arr[j]) for j in np.nonzero(row_mismatch)[0]]
            if 2 * len(errors) <= budget:
                outputs[:, component] = candidate_outputs[:, component]
                polynomials.append(Poly(self.field, candidate_coeffs[:, component]))
                error_nodes.update(errors)
                suspects.update(errors)
                continue
            # Fast path inconclusive for this component (errors among the
            # pivots, or genuinely past the radius): scalar decode decides.
            if full_presence:
                decoded = self._error_decoder.decode(matrix[:, component])
            else:
                column: list[int | None] = [None] * num_nodes
                for i in present:
                    column[i] = int(matrix[i, component])
                decoded = self._erasure_decoder.decode_with_erasures(column)
            polynomials.append(decoded.polynomial)
            error_nodes.update(decoded.error_positions)
            suspects.update(decoded.error_positions)
            outputs[:, component] = decoded.polynomial.evaluate_many(self.scheme.omegas)
            if any(index in suspects for index in pivot):
                pivot = None  # re-pivot away from the newly learnt suspects
        return DecodedRound(
            outputs=outputs,
            polynomials=polynomials,
            error_nodes=tuple(sorted(error_nodes)),
        )

    def pivot_rows(self, present: "list[int]", suspects: set[int]) -> list[int]:
        """The interpolation pivot the fast path derives from ``suspects``.

        First ``dimension`` present non-suspect rows, falling back to the
        first ``dimension`` present rows when too few remain — exactly the
        rule :meth:`decode_fast` applies, factored out so the speculative
        execution pipeline picks bit-identical pivots.
        """
        dimension = self.code.dimension
        pivot = [i for i in present if i not in suspects][:dimension]
        if len(pivot) < dimension:
            pivot = list(present[:dimension])
        return pivot

    def pivot_matrices(
        self, pivot: "list[int]"
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached ``(to_all, to_omegas, to_coeffs)`` maps for one pivot set."""
        pivot_points = tuple(int(self.scheme.alphas[i]) for i in pivot)
        all_points = tuple(int(a) for a in self.scheme.alphas)
        omega_points = tuple(int(w) for w in self.scheme.omegas)
        return (
            cached_transfer_matrix(self.field, pivot_points, all_points),
            cached_transfer_matrix(self.field, pivot_points, omega_points),
            cached_interpolation_matrix(self.field, pivot_points),
        )

    def _full_presence_matrix(self, entry) -> np.ndarray | None:
        """Canonicalise one round to an ``(N, width)`` matrix, or ``None``.

        ``None`` means the entry is not a well-formed full-presence round
        (missing results, ragged widths, wrong node count); such rounds are
        delegated to :meth:`decode_fast`, which reproduces the exact scalar
        semantics — including the exact error it would raise.
        """
        num_nodes = self.scheme.num_nodes
        if isinstance(entry, np.ndarray):
            matrix = self.field.array(entry)
            if matrix.ndim == 1:
                matrix = matrix.reshape(-1, 1)
            if matrix.ndim != 2 or matrix.shape[0] != num_nodes:
                return None
            return matrix
        if len(entry) != num_nodes or any(row is None for row in entry):
            return None
        rows = [self.field.array(row).reshape(-1) for row in entry]
        width = rows[0].shape[0]
        if any(row.shape[0] != width for row in rows):
            return None
        return np.vstack(rows)

    def stacked_verification(
        self, stacked: np.ndarray, reencoded: np.ndarray, width: int
    ) -> tuple[list[tuple[int, ...]], int | None]:
        """Walk a stacked run of full-presence rounds against the error budget.

        ``stacked`` is ``width``-column rounds hstacked to ``(N, B * width)``;
        ``reencoded`` is the pivot candidate re-encoded at every point.
        Returns ``(confirmed_error_nodes, rollback_offset)``: one error-node
        tuple per round of the maximal confirmed prefix, and the offset of
        the first round with an over-budget component (``None`` when the
        whole run confirmed).  This is the acceptance rule of
        :meth:`decode_fast` — ``2e <= present - dimension``, the uniqueness
        radius — factored out so the stacked :meth:`decode_batch` and the
        execution engine's speculative window resolution share one
        implementation of it.
        """
        budget = stacked.shape[0] - self.code.dimension
        mismatch = reencoded != stacked
        errors_per_column = mismatch.sum(axis=0)
        confirmed: list[tuple[int, ...]] = []
        for offset in range(stacked.shape[1] // width):
            columns = slice(offset * width, (offset + 1) * width)
            if np.any(2 * errors_per_column[columns] > budget):
                return confirmed, offset
            rows = np.nonzero(mismatch[:, columns].any(axis=1))[0]
            confirmed.append(tuple(int(i) for i in rows))
        return confirmed, None

    def _charge_fast_path(self, width: int) -> None:
        """Charge one round's fast-path decode cost to the attached counter.

        The stacked verification computes its three matrix products for many
        rounds in one call each; charging the per-round equivalents here
        keeps the operation counts bit-identical to a :meth:`decode_fast`
        loop, which performs the same products one round at a time.
        """
        dimension = self.code.dimension
        rows = self.scheme.num_nodes + self.scheme.num_machines + dimension
        self.field._count_mul(rows * dimension * width)
        self.field._count_add(rows * max(dimension - 1, 0) * width)

    def decode_batch(
        self,
        rounds: "np.ndarray | list[np.ndarray | list[np.ndarray | None]]",
        suspects: set[int] | None = None,
    ) -> list[DecodedRound]:
        """Decode a batch of rounds with the verification matmul stacked.

        ``rounds`` is a ``(B, N, result_dim)`` array (full presence) or a list
        whose entries are per-round result matrices / ``None``-marked lists
        (partially synchronous rounds).  A single ``suspects`` set is threaded
        through the whole batch, so a persistent fault pattern costs one
        scalar decode in total rather than one per component per round.

        Consecutive full-presence rounds share the suspect-derived pivot (a
        fast-path round can only add suspects *beyond* the pivot prefix, so
        the pivot cannot drift until a round leaves the fast path), which
        lets the candidate interpolation, the re-encoding verification and
        the coefficient recovery each run as **one** stacked matrix product
        for the whole run instead of one per round.  A round with a
        component past the error budget falls back to :meth:`decode_fast`
        (updating ``suspects``) and the remaining rounds re-group around the
        new pivot.  Results *and* charged operation counts are bit-identical
        to calling :meth:`decode_fast` round by round.
        """
        if suspects is None:
            suspects = set()
        if isinstance(rounds, np.ndarray):
            if rounds.ndim == 2:
                rounds = rounds[None, :, :]
            entries = [rounds[b] for b in range(rounds.shape[0])]
        else:
            entries = list(rounds)
        results: list[DecodedRound | None] = [None] * len(entries)
        index = 0
        while index < len(entries):
            matrix = self._full_presence_matrix(entries[index])
            if matrix is None:
                results[index] = self.decode_fast(entries[index], suspects)
                index += 1
                continue
            run = [matrix]
            while index + len(run) < len(entries):
                nxt = self._full_presence_matrix(entries[index + len(run)])
                if nxt is None or nxt.shape[1] != matrix.shape[1]:
                    break
                run.append(nxt)
            index = self._decode_stacked_run(run, index, suspects, results)
        return results

    def _decode_stacked_run(
        self,
        matrices: list[np.ndarray],
        first_index: int,
        suspects: set[int],
        results: "list[DecodedRound | None]",
    ) -> int:
        """Decode a run of full-presence rounds with stacked verification.

        Accepts the maximal confirmed prefix of the run; the first round
        with an over-budget component is resolved by :meth:`decode_fast`
        and the caller re-groups from the round after it.  Returns the index
        of the first round left undecoded.
        """
        num_nodes = self.scheme.num_nodes
        pivot = self.pivot_rows(list(range(num_nodes)), suspects)
        to_all, to_omegas, to_coeffs = self.pivot_matrices(pivot)
        stacked = matrices[0] if len(matrices) == 1 else np.hstack(matrices)
        sub = stacked[pivot, :]
        # The stacked products are computed uncounted; each confirmed round
        # is charged its exact per-round fast-path equivalent instead, so
        # counts match the sequential loop even when a mid-run fallback
        # forces later rounds to be re-verified under a new pivot.
        saved_counter = self.field.counter
        self.field.attach_counter(None)
        try:
            reencoded = self.field.matmul(to_all, sub)
            outputs_all = self.field.matmul(to_omegas, sub)
            coeffs_all = self.field.matmul(to_coeffs, sub)
        finally:
            self.field.attach_counter(saved_counter)
        width = matrices[0].shape[1]
        confirmed, rollback_at = self.stacked_verification(stacked, reencoded, width)
        for offset, error_nodes in enumerate(confirmed):
            columns = slice(offset * width, (offset + 1) * width)
            self._charge_fast_path(width)
            suspects.update(error_nodes)
            results[first_index + offset] = DecodedRound(
                outputs=np.ascontiguousarray(outputs_all[:, columns]),
                polynomials=[
                    Poly(self.field, coeffs_all[:, c])
                    for c in range(columns.start, columns.stop)
                ],
                error_nodes=error_nodes,
            )
        if rollback_at is None:
            return first_index + len(matrices)
        # Fast path inconclusive for some component (errors among the
        # pivots, or genuinely past the radius): the scalar-path decode
        # decides, exactly as in the sequential loop.
        results[first_index + rollback_at] = self.decode_fast(
            matrices[rollback_at], suspects
        )
        return first_index + rollback_at + 1

    def decode_partial(
        self, coded_results: list[np.ndarray | None]
    ) -> DecodedRound:
        """Decode when some results are missing (partially synchronous setting).

        ``coded_results`` is a length-``N`` list whose missing entries are
        ``None``; present entries are result vectors.  Decoding succeeds as
        long as ``2 * errors <= present - dimension`` for every component,
        which matches the paper's ``3b + 1 <= N - d(K - 1)`` bound when
        ``b`` nodes are silent and ``b`` present results are wrong.
        """
        if len(coded_results) != self.scheme.num_nodes:
            raise DecodingError(
                f"expected {self.scheme.num_nodes} result slots, got {len(coded_results)}"
            )
        present = [r for r in coded_results if r is not None]
        if not present:
            raise DecodingError("no coded results available to decode")
        result_dim = self.field.array(present[0]).reshape(-1).shape[0]
        polynomials: list[Poly] = []
        error_nodes: set[int] = set()
        outputs = np.zeros((self.scheme.num_machines, result_dim), dtype=np.int64)
        for component in range(result_dim):
            column: list[int | None] = []
            for entry in coded_results:
                if entry is None:
                    column.append(None)
                else:
                    vec = self.field.array(entry).reshape(-1)
                    if vec.shape[0] != result_dim:
                        raise DecodingError(
                            "all coded results must share the same dimension"
                        )
                    column.append(int(vec[component]))
            decoded = self._erasure_decoder.decode_with_erasures(column)
            polynomials.append(decoded.polynomial)
            error_nodes.update(decoded.error_positions)
            outputs[:, component] = decoded.polynomial.evaluate_many(self.scheme.omegas)
        return DecodedRound(
            outputs=outputs,
            polynomials=polynomials,
            error_nodes=tuple(sorted(error_nodes)),
        )
