"""Decoding of coded computation results back into per-machine outputs.

After the execution step every node has broadcast its coded result
``g_i = f(S~_i, X~_i)``, a vector whose every component is the evaluation at
``alpha_i`` of some polynomial of degree at most ``d(K - 1)``.  The decoder
runs noisy interpolation (Reed–Solomon decoding) independently on each
component, then evaluates the recovered polynomials at the ``omega_k`` to
obtain ``(S_k(t+1), Y_k(t)) = f(S_k(t), X_k(t))`` for every machine ``k``.

Both the synchronous case (all ``N`` results present, up to ``b`` wrong) and
the partially synchronous case (``b`` results missing *and* up to ``b`` of the
present ones wrong) are supported.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DecodingError, FieldError
from repro.coding.berlekamp_welch import BerlekampWelchDecoder
from repro.coding.erasure import ErasureDecoder
from repro.coding.gao import GaoDecoder
from repro.coding.reed_solomon import ReedSolomonCode
from repro.gf.matrix_cache import cached_interpolation_matrix, cached_transfer_matrix
from repro.gf.polynomial import Poly
from repro.lcc.scheme import LagrangeScheme


@dataclass
class DecodedRound:
    """Result of decoding one round of coded computations.

    Attributes
    ----------
    outputs:
        Array of shape ``(K, result_dim)``: row ``k`` is the true result
        ``f(S_k, X_k)`` for machine ``k``.
    polynomials:
        The recovered composite polynomial for each result component.
    error_nodes:
        Node indices whose contributed results were found to be erroneous in
        at least one component (the set the protocol may flag as suspects).
    """

    outputs: np.ndarray
    polynomials: list[Poly]
    error_nodes: tuple[int, ...]


class CodedResultDecoder:
    """Noisy-interpolation decoder bound to a :class:`LagrangeScheme`."""

    def __init__(
        self,
        scheme: LagrangeScheme,
        transition_degree: int,
        decoder: str = "berlekamp-welch",
    ) -> None:
        if transition_degree < 1:
            raise FieldError(
                f"transition degree must be at least 1, got {transition_degree}"
            )
        if decoder not in ("berlekamp-welch", "gao"):
            raise FieldError(f"unknown decoder '{decoder}'")
        self.scheme = scheme
        self.field = scheme.field
        self.transition_degree = int(transition_degree)
        self.decoder_kind = decoder
        self.code = ReedSolomonCode(
            scheme.field,
            scheme.alphas,
            scheme.decoding_dimension(transition_degree),
        )
        self._error_decoder = (
            BerlekampWelchDecoder(self.code)
            if decoder == "berlekamp-welch"
            else GaoDecoder(self.code)
        )
        self._erasure_decoder = ErasureDecoder(self.code)

    # -- public API -------------------------------------------------------------------
    @property
    def max_errors(self) -> int:
        """Errors correctable when all results are present."""
        return self.code.correction_radius

    def decode(self, coded_results: np.ndarray) -> DecodedRound:
        """Decode a full set of ``N`` coded results (synchronous setting).

        ``coded_results`` has shape ``(N, result_dim)``; up to
        ``max_errors`` rows may be arbitrary garbage.
        """
        results = self.field.array(coded_results)
        if results.ndim == 1:
            results = results.reshape(-1, 1)
        if results.shape[0] != self.scheme.num_nodes:
            raise DecodingError(
                f"expected {self.scheme.num_nodes} coded results, got {results.shape[0]}"
            )
        polynomials: list[Poly] = []
        error_nodes: set[int] = set()
        outputs = np.zeros(
            (self.scheme.num_machines, results.shape[1]), dtype=np.int64
        )
        for component in range(results.shape[1]):
            decoded = self._error_decoder.decode(results[:, component])
            polynomials.append(decoded.polynomial)
            error_nodes.update(decoded.error_positions)
            outputs[:, component] = decoded.polynomial.evaluate_many(self.scheme.omegas)
        return DecodedRound(
            outputs=outputs,
            polynomials=polynomials,
            error_nodes=tuple(sorted(error_nodes)),
        )

    def decode_fast(
        self,
        coded_results: "np.ndarray | list[np.ndarray | None]",
        suspects: set[int] | None = None,
    ) -> DecodedRound:
        """Decode one round through the cached-matrix fast path.

        Instead of solving a Berlekamp–Welch system per component, the fast
        path interpolates a candidate polynomial through ``dimension`` pivot
        rows (one cached-matrix product for all components at once), re-encodes
        it at every point (a second product) and accepts any component whose
        mismatch count fits the erasure/error budget ``2e <= present - K`` —
        by the uniqueness of the codeword within that radius the candidate
        *is* the Berlekamp–Welch answer.  Components that exceed the budget
        (e.g. because a faulty node sat among the pivots) fall back to the
        scalar decoders, so results are always bit-identical to
        :meth:`decode` / :meth:`decode_partial`.

        ``suspects`` is the engine's persistent set of node indices caught
        erring in earlier components or rounds; pivots avoid them, which is
        what reduces a faulty batch to a single scalar decode per new fault
        pattern.  The set is updated in place with every error found.
        """
        if suspects is None:
            suspects = set()
        num_nodes = self.scheme.num_nodes
        if isinstance(coded_results, np.ndarray):
            matrix = self.field.array(coded_results)
            if matrix.ndim == 1:
                matrix = matrix.reshape(-1, 1)
            present = list(range(matrix.shape[0]))
        else:
            if len(coded_results) != num_nodes:
                raise DecodingError(
                    f"expected {num_nodes} result slots, got {len(coded_results)}"
                )
            present = [i for i, entry in enumerate(coded_results) if entry is not None]
            if not present:
                raise DecodingError("no coded results available to decode")
            width = self.field.array(coded_results[present[0]]).reshape(-1).shape[0]
            matrix = np.zeros((num_nodes, width), dtype=np.int64)
            for i in present:
                vec = self.field.array(coded_results[i]).reshape(-1)
                if vec.shape[0] != width:
                    raise DecodingError(
                        "all coded results must share the same dimension"
                    )
                matrix[i] = vec
        if matrix.shape[0] != num_nodes:
            raise DecodingError(
                f"expected {num_nodes} coded results, got {matrix.shape[0]}"
            )

        dimension = self.code.dimension
        full_presence = len(present) == num_nodes
        if len(present) < dimension:
            raise DecodingError(
                f"only {len(present)} symbols present, need at least "
                f"{dimension} to decode"
            )
        budget = len(present) - dimension
        present_arr = np.array(present, dtype=np.int64)
        all_points = tuple(int(a) for a in self.scheme.alphas)
        omega_points = tuple(int(w) for w in self.scheme.omegas)

        pivot: list[int] | None = None
        reencoded = candidate_outputs = candidate_coeffs = None
        polynomials: list[Poly] = []
        error_nodes: set[int] = set()
        outputs = np.zeros((self.scheme.num_machines, matrix.shape[1]), dtype=np.int64)
        for component in range(matrix.shape[1]):
            if pivot is None:
                pivot = [i for i in present if i not in suspects][:dimension]
                if len(pivot) < dimension:
                    pivot = present[:dimension]
                pivot_points = tuple(int(self.scheme.alphas[i]) for i in pivot)
                to_all = cached_transfer_matrix(self.field, pivot_points, all_points)
                to_omegas = cached_transfer_matrix(
                    self.field, pivot_points, omega_points
                )
                to_coeffs = cached_interpolation_matrix(self.field, pivot_points)
                sub = matrix[pivot, :]
                reencoded = self.field.matmul(to_all, sub)
                candidate_outputs = self.field.matmul(to_omegas, sub)
                candidate_coeffs = self.field.matmul(to_coeffs, sub)
            row_mismatch = reencoded[present_arr, component] != matrix[present_arr, component]
            errors = [int(present_arr[j]) for j in np.nonzero(row_mismatch)[0]]
            if 2 * len(errors) <= budget:
                outputs[:, component] = candidate_outputs[:, component]
                polynomials.append(Poly(self.field, candidate_coeffs[:, component]))
                error_nodes.update(errors)
                suspects.update(errors)
                continue
            # Fast path inconclusive for this component (errors among the
            # pivots, or genuinely past the radius): scalar decode decides.
            if full_presence:
                decoded = self._error_decoder.decode(matrix[:, component])
            else:
                column: list[int | None] = [None] * num_nodes
                for i in present:
                    column[i] = int(matrix[i, component])
                decoded = self._erasure_decoder.decode_with_erasures(column)
            polynomials.append(decoded.polynomial)
            error_nodes.update(decoded.error_positions)
            suspects.update(decoded.error_positions)
            outputs[:, component] = decoded.polynomial.evaluate_many(self.scheme.omegas)
            if any(index in suspects for index in pivot):
                pivot = None  # re-pivot away from the newly learnt suspects
        return DecodedRound(
            outputs=outputs,
            polynomials=polynomials,
            error_nodes=tuple(sorted(error_nodes)),
        )

    def decode_batch(
        self,
        rounds: "np.ndarray | list[np.ndarray | list[np.ndarray | None]]",
        suspects: set[int] | None = None,
    ) -> list[DecodedRound]:
        """Decode a batch of rounds through the fast path with shared learning.

        ``rounds`` is a ``(B, N, result_dim)`` array (full presence) or a list
        whose entries are per-round result matrices / ``None``-marked lists
        (partially synchronous rounds).  A single ``suspects`` set is threaded
        through the whole batch, so a persistent fault pattern costs one
        scalar decode in total rather than one per component per round.
        """
        if suspects is None:
            suspects = set()
        if isinstance(rounds, np.ndarray) and rounds.ndim == 2:
            rounds = rounds[None, :, :]
        return [self.decode_fast(entry, suspects) for entry in rounds]

    def decode_partial(
        self, coded_results: list[np.ndarray | None]
    ) -> DecodedRound:
        """Decode when some results are missing (partially synchronous setting).

        ``coded_results`` is a length-``N`` list whose missing entries are
        ``None``; present entries are result vectors.  Decoding succeeds as
        long as ``2 * errors <= present - dimension`` for every component,
        which matches the paper's ``3b + 1 <= N - d(K - 1)`` bound when
        ``b`` nodes are silent and ``b`` present results are wrong.
        """
        if len(coded_results) != self.scheme.num_nodes:
            raise DecodingError(
                f"expected {self.scheme.num_nodes} result slots, got {len(coded_results)}"
            )
        present = [r for r in coded_results if r is not None]
        if not present:
            raise DecodingError("no coded results available to decode")
        result_dim = self.field.array(present[0]).reshape(-1).shape[0]
        polynomials: list[Poly] = []
        error_nodes: set[int] = set()
        outputs = np.zeros((self.scheme.num_machines, result_dim), dtype=np.int64)
        for component in range(result_dim):
            column: list[int | None] = []
            for entry in coded_results:
                if entry is None:
                    column.append(None)
                else:
                    vec = self.field.array(entry).reshape(-1)
                    if vec.shape[0] != result_dim:
                        raise DecodingError(
                            "all coded results must share the same dimension"
                        )
                    column.append(int(vec[component]))
            decoded = self._erasure_decoder.decode_with_erasures(column)
            polynomials.append(decoded.polynomial)
            error_nodes.update(decoded.error_positions)
            outputs[:, component] = decoded.polynomial.evaluate_many(self.scheme.omegas)
        return DecodedRound(
            outputs=outputs,
            polynomials=polynomials,
            error_nodes=tuple(sorted(error_nodes)),
        )
