"""Lagrange coded computing layer.

This package implements the coding design of Section 5 of the paper:

* :class:`~repro.lcc.scheme.LagrangeScheme` fixes the interpolation points
  ``omega_1..omega_K`` (one per state machine) and evaluation points
  ``alpha_1..alpha_N`` (one per node), and exposes the ``N x K`` coefficient
  matrix ``C = [c_ik]`` of equation (7).
* :class:`~repro.lcc.encoder.CodedStateEncoder` turns the ``K`` true
  state/command vectors into the ``N`` coded vectors stored/processed by the
  nodes — either row-by-row (what each node would do on its own) or through
  interpolation followed by multi-point evaluation (the centralised worker
  path of Section 6.2).
* :class:`~repro.lcc.decoder.CodedResultDecoder` performs the noisy
  interpolation of the coded computation results and evaluates the recovered
  composite polynomial at the ``omega_k`` to produce all ``K`` true outputs.
"""

from repro.lcc.scheme import LagrangeScheme
from repro.lcc.encoder import CodedStateEncoder
from repro.lcc.decoder import CodedResultDecoder, DecodedRound

__all__ = [
    "LagrangeScheme",
    "CodedStateEncoder",
    "CodedResultDecoder",
    "DecodedRound",
]
